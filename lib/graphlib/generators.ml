type planar = {
  graph : Graph.t;
  coords : (float * float) array;
  outer_face : int array;
}

(* Memoized families (DESIGN.md section 10): every generator below is a
   pure function of (family, params, seed), so the artifact cache can
   fetch repeat builds.  Cached values are shared between callers —
   planar records, graphs and attachment arrays are never mutated by
   consumers; the one caller-owned array (k_tree's elimination order) is
   copied out of the cache.  The trivial families (path, cycle, star,
   wheel, ...) are cheaper than a lookup and stay unmemoized. *)
module FP = Memo.Fingerprint

let m_grid : (int * int, planar) Memo.t =
  Memo.create ~name:"gen.grid" ~fp:(fun (w, h) -> FP.(empty |> int w |> int h))
  |> Memo.with_bytes_hint (fun p -> Graph.heap_bytes p.graph)

let m_apollonian : (int * int, planar) Memo.t =
  Memo.create ~name:"gen.apollonian" ~fp:(fun (seed, n) ->
      FP.(empty |> int seed |> int n))
  |> Memo.with_bytes_hint (fun p -> Graph.heap_bytes p.graph)

let m_series_parallel : (int * int, Graph.t) Memo.t =
  Memo.create ~name:"gen.series_parallel" ~fp:(fun (seed, n) ->
      FP.(empty |> int seed |> int n))
  |> Memo.with_bytes_hint Graph.heap_bytes

let m_k_tree : (int * int * int, Graph.t * int array) Memo.t =
  Memo.create ~name:"gen.k_tree" ~fp:(fun (seed, k, n) ->
      FP.(empty |> int seed |> int k |> int n))
  |> Memo.with_bytes_hint (fun (g, _) -> Graph.heap_bytes g)

let m_torus_grid : (int * int, Graph.t) Memo.t =
  Memo.create ~name:"gen.torus_grid" ~fp:(fun (w, h) ->
      FP.(empty |> int w |> int h))
  |> Memo.with_bytes_hint Graph.heap_bytes

let m_erdos_renyi : (int * int * float, Graph.t) Memo.t =
  Memo.create ~name:"gen.erdos_renyi" ~fp:(fun (seed, n, p) ->
      FP.(empty |> int seed |> int n |> float p))
  |> Memo.with_bytes_hint Graph.heap_bytes

let m_random_tree : (int * int, Graph.t) Memo.t =
  Memo.create ~name:"gen.random_tree" ~fp:(fun (seed, n) ->
      FP.(empty |> int seed |> int n))
  |> Memo.with_bytes_hint Graph.heap_bytes

let m_cycle_with_apex : (int, Graph.t) Memo.t =
  Memo.create ~name:"gen.cycle_with_apex" ~fp:(fun n -> FP.(empty |> int n))
  |> Memo.with_bytes_hint Graph.heap_bytes

let m_lower_bound : (int, Graph.t * int array) Memo.t =
  Memo.create ~name:"gen.lower_bound" ~fp:(fun p -> FP.(empty |> int p))
  |> Memo.with_bytes_hint (fun (g, _) -> Graph.heap_bytes g)

let m_grid_with_handles : (int * int * int * int, planar * Graph.t) Memo.t =
  Memo.create ~name:"gen.grid_with_handles" ~fp:(fun (seed, w, h, g) ->
      FP.(empty |> int seed |> int w |> int h |> int g))
  |> Memo.with_bytes_hint (fun (p, g) ->
         Graph.heap_bytes p.graph + Graph.heap_bytes g)

let m_add_apices : (int * Memo.Fingerprint.t * int * int, Graph.t) Memo.t =
  Memo.create ~name:"gen.add_apices" ~fp:(fun (seed, gfp, q, fanout) ->
      FP.(empty |> int seed |> int64 gfp |> int q |> int fanout))
  |> Memo.with_bytes_hint Graph.heap_bytes

let path n = Graph.of_edges n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let cycle n =
  if n < 3 then invalid_arg "Generators.cycle: need n >= 3";
  Graph.of_edges n (List.init n (fun i -> (i, (i + 1) mod n)))

let star n = Graph.of_edges n (List.init (max 0 (n - 1)) (fun i -> (0, i + 1)))

let wheel n =
  if n < 4 then invalid_arg "Generators.wheel: need n >= 4";
  let outer = n - 1 in
  let rim = List.init outer (fun i -> (i, (i + 1) mod outer)) in
  let spokes = List.init outer (fun i -> (i, outer)) in
  Graph.of_edges n (rim @ spokes)

let complete_bipartite a b =
  let acc = ref [] in
  for i = 0 to a - 1 do
    for j = 0 to b - 1 do
      acc := (i, a + j) :: !acc
    done
  done;
  Graph.of_edges (a + b) !acc

let binary_tree n = Graph.of_edges n (List.init (max 0 (n - 1)) (fun i -> (i + 1, i / 2)))

let petersen () =
  let outer = List.init 5 (fun i -> (i, (i + 1) mod 5)) in
  let spokes = List.init 5 (fun i -> (i, i + 5)) in
  let inner = List.init 5 (fun i -> (i + 5, ((i + 2) mod 5) + 5)) in
  Graph.of_edges 10 (outer @ spokes @ inner)

let random_tree ~seed n =
  Memo.find_or_compute m_random_tree (seed, n) @@ fun () ->
  let st = Random.State.make [| seed |] in
  Graph.of_edges n (List.init (max 0 (n - 1)) (fun i -> (i + 1, Random.State.int st (i + 1))))

let erdos_renyi ~seed n p =
  Memo.find_or_compute m_erdos_renyi (seed, n, p) @@ fun () ->
  let st = Random.State.make [| seed |] in
  let rec attempt tries =
    let acc = ref [] in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        if Random.State.float st 1.0 < p then acc := (u, v) :: !acc
      done
    done;
    (* splice in a random spanning tree if disconnected, after a few tries *)
    let g = Graph.of_edges n !acc in
    if Traversal.is_connected g then g
    else if tries > 0 then attempt (tries - 1)
    else begin
      let spine = List.init (n - 1) (fun i -> (i + 1, Random.State.int st (i + 1))) in
      Graph.of_edges n (spine @ !acc)
    end
  in
  attempt 5

let grid w h =
  if w < 1 || h < 1 then invalid_arg "Generators.grid";
  Memo.find_or_compute m_grid (w, h) @@ fun () ->
  let id x y = (y * w) + x in
  let acc = ref [] in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      if x + 1 < w then acc := (id x y, id (x + 1) y) :: !acc;
      if y + 1 < h then acc := (id x y, id x (y + 1)) :: !acc
    done
  done;
  let graph = Graph.of_edges (w * h) !acc in
  let coords = Array.init (w * h) (fun v -> (float_of_int (v mod w), float_of_int (v / w))) in
  (* outer boundary, counterclockwise starting at (0,0) *)
  let boundary = ref [] in
  for x = 0 to w - 1 do
    boundary := id x 0 :: !boundary
  done;
  for y = 1 to h - 1 do
    boundary := id (w - 1) y :: !boundary
  done;
  if h > 1 then
    for x = w - 2 downto 0 do
      boundary := id x (h - 1) :: !boundary
    done;
  if w > 1 then
    for y = h - 2 downto 1 do
      boundary := id 0 y :: !boundary
    done;
  { graph; coords; outer_face = Array.of_list (List.rev !boundary) }

let apollonian ~seed n =
  if n < 3 then invalid_arg "Generators.apollonian: need n >= 3";
  Memo.find_or_compute m_apollonian (seed, n) @@ fun () ->
  let st = Random.State.make [| seed |] in
  let coords = Array.make n (0.0, 0.0) in
  coords.(0) <- (0.0, 0.0);
  coords.(1) <- (1.0, 0.0);
  coords.(2) <- (0.5, 1.0);
  let edges = ref [ (0, 1); (1, 2); (0, 2) ] in
  (* faces as a growable array of triangles *)
  let faces = ref [| (0, 1, 2) |] in
  let nfaces = ref 1 in
  let push_face f =
    if !nfaces = Array.length !faces then begin
      let bigger = Array.make (max 8 (2 * !nfaces)) (0, 0, 0) in
      Array.blit !faces 0 bigger 0 !nfaces;
      faces := bigger
    end;
    !faces.(!nfaces) <- f;
    incr nfaces
  in
  for v = 3 to n - 1 do
    let i = Random.State.int st !nfaces in
    let a, b, c = !faces.(i) in
    let (ax, ay), (bx, by), (cx, cy) = (coords.(a), coords.(b), coords.(c)) in
    coords.(v) <- ((ax +. bx +. cx) /. 3.0, (ay +. by +. cy) /. 3.0);
    edges := (v, a) :: (v, b) :: (v, c) :: !edges;
    !faces.(i) <- (a, b, v);
    push_face (b, c, v);
    push_face (a, c, v)
  done;
  { graph = Graph.of_edges n !edges; coords; outer_face = [| 0; 1; 2 |] }

let series_parallel ~seed n =
  if n < 2 then invalid_arg "Generators.series_parallel: need n >= 2";
  Memo.find_or_compute m_series_parallel (seed, n) @@ fun () ->
  let st = Random.State.make [| seed |] in
  (* Grow by repeatedly picking an existing edge (u,v) and either subdividing
     it through a new vertex (series) or adding a new vertex adjacent to both
     endpoints (parallel-of-series). Both preserve series-parallelness. *)
  let edges = ref [ (0, 1) ] in
  let medges = ref 1 in
  let edge_arr = ref [| (0, 1) |] in
  let push (u, v) =
    edges := (u, v) :: !edges;
    if !medges = Array.length !edge_arr then begin
      let bigger = Array.make (max 8 (2 * !medges)) (0, 0) in
      Array.blit !edge_arr 0 bigger 0 !medges;
      edge_arr := bigger
    end;
    !edge_arr.(!medges) <- (u, v);
    incr medges
  in
  for w = 2 to n - 1 do
    let u, v = !edge_arr.(Random.State.int st !medges) in
    if Random.State.bool st then begin
      (* series: w subdivides an attachment between u and v *)
      push (u, w);
      push (w, v)
    end
    else
      (* dangling series extension keeps SP-ness too *)
      push (u, w)
  done;
  Graph.of_edges n !edges

let k_tree_build ~seed ~k n =
  let st = Random.State.make [| seed |] in
  let edges = ref [] in
  (* cliques.(i) = the k-clique vertex v was attached to, as an array *)
  let cliques = Array.make n [||] in
  for u = 0 to k do
    for v = u + 1 to k do
      edges := (u, v) :: !edges
    done
  done;
  (* seed cliques: all k-subsets of the initial K_{k+1} represented lazily by
     remembering, for each added vertex, its attachment clique *)
  for v = k + 1 to n - 1 do
    (* choose a host: either one of the first k+1 vertices' implicit clique or
       a previously attached vertex's clique with one element swapped *)
    let host = Random.State.int st v in
    let clique =
      if host <= k then Array.init k (fun i -> if i < host then i else i + 1)
      else begin
        let base = cliques.(host) in
        (* replace a random member of base with host itself: still a k-clique *)
        let c = Array.copy base in
        c.(Random.State.int st k) <- host;
        (* ensure distinct entries: if host already present, fall back *)
        let sorted = Array.copy c in
        Array.sort Int.compare sorted;
        let dup = ref false in
        for i = 0 to k - 2 do
          if sorted.(i) = sorted.(i + 1) then dup := true
        done;
        if !dup then base else c
      end
    in
    cliques.(v) <- clique;
    Array.iter (fun u -> edges := (u, v) :: !edges) clique
  done;
  let elim = Array.init n (fun i -> n - 1 - i) in
  (Graph.of_edges n !edges, elim)

let k_tree ~seed ~k n =
  if n < k + 1 then invalid_arg "Generators.k_tree: need n >= k+1";
  let g, elim =
    Memo.find_or_compute m_k_tree (seed, k, n) (fun () -> k_tree_build ~seed ~k n)
  in
  (* the elimination order is caller-owned; hand out a private copy *)
  (g, Array.copy elim)

let torus_grid w h =
  if w < 3 || h < 3 then invalid_arg "Generators.torus_grid: need w,h >= 3";
  Memo.find_or_compute m_torus_grid (w, h) @@ fun () ->
  let id x y = (y * w) + x in
  let acc = ref [] in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      acc := (id x y, id ((x + 1) mod w) y) :: !acc;
      acc := (id x y, id x ((y + 1) mod h)) :: !acc
    done
  done;
  Graph.of_edges (w * h) !acc

let grid_with_handles ~seed w h g =
  Memo.find_or_compute m_grid_with_handles (seed, w, h, g) @@ fun () ->
  let base = grid w h in
  let st = Random.State.make [| seed |] in
  let b = base.outer_face in
  let nb = Array.length b in
  let extra = ref [] in
  let tries = ref 0 in
  while List.length !extra < g && !tries < 100 * g do
    incr tries;
    let u = b.(Random.State.int st nb) and v = b.(Random.State.int st nb) in
    if u <> v && not (Graph.mem_edge base.graph u v) && not (List.mem (u, v) !extra)
       && not (List.mem (v, u) !extra)
    then extra := (u, v) :: !extra
  done;
  let edges =
    Graph.fold_edges base.graph ~init:!extra ~f:(fun acc _ u v -> (u, v) :: acc)
  in
  (base, Graph.of_edges (Graph.n base.graph) edges)

let add_apices ~seed g ~q ~fanout =
  Memo.find_or_compute m_add_apices (seed, Graph.fingerprint g, q, fanout)
  @@ fun () ->
  let st = Random.State.make [| seed |] in
  let n = Graph.n g in
  let edges = Graph.fold_edges g ~init:[] ~f:(fun acc _ u v -> (u, v) :: acc) in
  let extra = ref [] in
  for a = 0 to q - 1 do
    let apex = n + a in
    (* guarantee connectivity *)
    extra := (apex, Random.State.int st n) :: !extra;
    for _ = 2 to fanout do
      extra := (apex, Random.State.int st n) :: !extra
    done;
    for b = 0 to a - 1 do
      extra := (apex, n + b) :: !extra
    done
  done;
  Graph.of_edges (n + q) (edges @ !extra)

let cycle_with_apex n =
  if n < 4 then invalid_arg "Generators.cycle_with_apex: need n >= 4";
  Memo.find_or_compute m_cycle_with_apex n @@ fun () ->
  let rim = List.init (n - 1) (fun i -> (i, (i + 1) mod (n - 1))) in
  let spokes = List.init (n - 1) (fun i -> (i, n - 1)) in
  Graph.of_edges n (rim @ spokes)

let lower_bound_build p =
  if p < 2 then invalid_arg "Generators.lower_bound: need p >= 2";
  Memo.find_or_compute m_lower_bound p @@ fun () ->
  (* vertices: p paths of p vertices each: v(i,j) = i*p + j
     then a balanced binary tree over the p columns *)
  let base = p * p in
  let path_vertex i j = (i * p) + j in
  let edges = ref [] in
  for i = 0 to p - 1 do
    for j = 0 to p - 2 do
      edges := (path_vertex i j, path_vertex i (j + 1)) :: !edges
    done
  done;
  (* binary tree with p leaves: heap-numbered tree of 2p-1 nodes; node t -> base + t *)
  let tree_nodes = (2 * p) - 1 in
  for t = 1 to tree_nodes - 1 do
    edges := (base + t, base + ((t - 1) / 2)) :: !edges
  done;
  (* leaves are the last p heap nodes: tree node p-1+j is leaf j *)
  for j = 0 to p - 1 do
    let leaf = base + (p - 1) + j in
    for i = 0 to p - 1 do
      edges := (leaf, path_vertex i j) :: !edges
    done
  done;
  let g = Graph.of_edges (base + tree_nodes) !edges in
  (g, Array.init p (fun i -> path_vertex i 0))

let lower_bound p =
  let g, attach = lower_bound_build p in
  (g, Array.copy attach)

let lower_bound_parts p =
  let g, _ = lower_bound_build p in
  let parts = List.init p (fun i -> List.init p (fun j -> (i * p) + j)) in
  (g, parts)

(* -- RMAT / power-law stress family (non-minor-free) -- *)

let m_rmat : (int * int * int * float * float * float, Graph.t) Memo.t =
  Memo.create ~name:"gen.rmat" ~fp:(fun (seed, scale, edge_factor, a, b, c) ->
      FP.(
        empty |> int seed |> int scale |> int edge_factor |> float a
        |> float b |> float c))
  |> Memo.with_bytes_hint Graph.heap_bytes

(* the classic recursive-matrix generator: each of [edge_factor * 2^scale]
   raw edges picks one quadrant per scale level with probabilities
   (a, b, c, 1-a-b-c), descending into the adjacency matrix.  Skewed
   quadrants give the heavy-tailed degree distribution; self-loops and
   duplicates are dropped by the builder, so m comes out slightly below
   edge_factor * n. *)
let rmat_build_boxed st ~scale ~edge_factor ~a ~b ~c =
  let n = 1 lsl scale in
  let target = edge_factor * n in
  let bld = Graph.Builder.create ~edges_hint:target n in
  let u = ref 0 and v = ref 0 in
  for _ = 1 to target do
    u := 0;
    v := 0;
    for _ = 1 to scale do
      let r = Random.State.float st 1.0 in
      let bu, bv =
        if r < a then (0, 0)
        else if r < a +. b then (0, 1)
        else if r < a +. b +. c then (1, 0)
        else (1, 1)
      in
      u := (!u lsl 1) lor bu;
      v := (!v lsl 1) lor bv
    done;
    if !u <> !v then Graph.Builder.add_edge bld !u !v
  done;
  Graph.Builder.build bld

(* Scale-path sampler: the same stream, drawn unboxed.  Every level of
   every edge draws [Random.State.float st 1.0] = d * 2^-53 with
   d = [Fastrand.draw53 st], and comparing d * 2^-53 < q is exact iff
   float_of_int d < q * 2^53, because d < 2^53 makes [float_of_int]
   lossless and scaling by a power of two only moves the exponent.  The
   thresholds are the SAME rounded sums the boxed path compares against
   (a +. b, then a +. b +. c), scaled once outside the loop — so the
   quadrant decisions, and hence the generated graph, are bit-identical
   while the per-draw boxed Int64/float garbage disappears from the S1
   build span. *)
let rmat_build_fast st ~scale ~edge_factor ~a ~b ~c =
  let n = 1 lsl scale in
  let target = edge_factor * n in
  let bld = Graph.Builder.create ~edges_hint:target n in
  let ta = a *. 0x1.p53 in
  let tab = (a +. b) *. 0x1.p53 in
  let tabc = (a +. b +. c) *. 0x1.p53 in
  let u = ref 0 and v = ref 0 in
  for _ = 1 to target do
    u := 0;
    v := 0;
    for _ = 1 to scale do
      let r = float_of_int (Fastrand.draw53 st) in
      let bu, bv =
        if r < ta then (0, 0)
        else if r < tab then (0, 1)
        else if r < tabc then (1, 0)
        else (1, 1)
      in
      u := (!u lsl 1) lor bu;
      v := (!v lsl 1) lor bv
    done;
    if !u <> !v then Graph.Builder.add_edge bld !u !v
  done;
  Graph.Builder.build bld

let rmat_build st ~scale ~edge_factor ~a ~b ~c =
  if Fastrand.active () then rmat_build_fast st ~scale ~edge_factor ~a ~b ~c
  else rmat_build_boxed st ~scale ~edge_factor ~a ~b ~c

let rmat_fast_sampler_active = Fastrand.active

let rmat ?state ?(a = 0.57) ?(b = 0.19) ?(c = 0.19) ~seed ~scale ~edge_factor () =
  if scale < 1 || scale > 30 then invalid_arg "Generators.rmat: scale must be in 1..30";
  if edge_factor < 1 then invalid_arg "Generators.rmat: edge_factor must be >= 1";
  if a < 0.0 || b < 0.0 || c < 0.0 || a +. b +. c > 1.0 then
    invalid_arg "Generators.rmat: quadrant probabilities must be >= 0 and sum <= 1";
  match state with
  | Some st -> rmat_build st ~scale ~edge_factor ~a ~b ~c
  | None ->
      Memo.find_or_compute m_rmat (seed, scale, edge_factor, a, b, c) @@ fun () ->
      rmat_build (Random.State.make [| seed |]) ~scale ~edge_factor ~a ~b ~c
