(* Flat byte-backed bitset (DESIGN.md §15).

   BFS-style kernels need a dense membership test over [0, n): a
   Hashtbl costs a hash + bucket chase + boxed bindings per probe, a
   bool array costs 8x the memory and the same cache misses.  One byte
   per 8 vertices keeps a 2^20-vertex visited set in 128 KiB — L2
   resident — and every operation is two shifts and a mask. *)

type t = { bits : Bytes.t; len : int }

let create len =
  if len < 0 then invalid_arg "Bitset.create";
  { bits = Bytes.make ((len + 7) lsr 3) '\000'; len }

let length t = t.len

let check t i name = if i < 0 || i >= t.len then invalid_arg name

let mem t i =
  check t i "Bitset.mem";
  Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add t i =
  check t i "Bitset.add";
  let w = i lsr 3 in
  Bytes.unsafe_set t.bits w
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.bits w) lor (1 lsl (i land 7))))

let remove t i =
  check t i "Bitset.remove";
  let w = i lsr 3 in
  Bytes.unsafe_set t.bits w
    (Char.unsafe_chr
       (Char.code (Bytes.unsafe_get t.bits w) land lnot (1 lsl (i land 7)) land 0xff))

(* add + membership report in one probe: returns [true] iff [i] was
   absent (and is now present).  The common BFS "visit if new" step. *)
let add_new t i =
  check t i "Bitset.add_new";
  let w = i lsr 3 in
  let byte = Char.code (Bytes.unsafe_get t.bits w) in
  let bit = 1 lsl (i land 7) in
  if byte land bit <> 0 then false
  else begin
    Bytes.unsafe_set t.bits w (Char.unsafe_chr (byte lor bit));
    true
  end

let clear t = Bytes.fill t.bits 0 (Bytes.length t.bits) '\000'

let cardinal t =
  let c = ref 0 in
  for w = 0 to Bytes.length t.bits - 1 do
    let b = ref (Char.code (Bytes.unsafe_get t.bits w)) in
    while !b <> 0 do
      b := !b land (!b - 1);
      incr c
    done
  done;
  !c

let iter f t =
  for i = 0 to t.len - 1 do
    if Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0
    then f i
  done
