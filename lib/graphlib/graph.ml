(* Flat CSR graph core over Bigarray-backed int arrays (DESIGN.md §12).

   Layout: edges are numbered 0..m-1 in first-occurrence insertion order
   and stored endpoint-wise in [esrc]/[edst].  Adjacency is one flat pair
   of arrays [dst]/[eid] of length 2m, segmented by [seg] (n+1 offsets):
   positions seg.(v) .. seg.(v+1)-1 hold v's incident (neighbor, edge id)
   pairs.  Segments are filled by a single ascending pass over the edge
   ids, appending to the source endpoint first, then the destination —
   which reproduces exactly the edge-insertion adjacency order of the
   historical boxed representation.  Every recorded experiment number
   (BFS tie-breaking, Voronoi growth, CONGEST delivery order) depends on
   that order; do not reorder segments.

   [srt] is a permutation of CSR positions, sorted per segment by
   neighbor id: the binary-search lookup idiom formerly provided by the
   [adj_sorted] arrays, without a second copy of the pairs.

   The payload lives outside the OCaml heap: the GC never scans or moves
   it, [Exec.Pool] domains share it zero-copy, and [Obj.reachable_words]
   does not see it — which is why [heap_bytes] exists for the Memo
   cache's byte accounting. *)

module Ba = Bigarray.Array1

type int_bigarray = (int, Bigarray.int_elt, Bigarray.c_layout) Ba.t

let ints len : int_bigarray = Ba.create Bigarray.int Bigarray.c_layout len

type t = {
  n : int;
  m : int;
  esrc : int_bigarray; (* m: first endpoint of edge e, insertion order *)
  edst : int_bigarray; (* m: second endpoint of edge e *)
  seg : int_bigarray; (* n+1: CSR segment offsets into dst/eid/srt *)
  dst : int_bigarray; (* 2m: neighbor ids, edge-insertion order *)
  eid : int_bigarray; (* 2m: edge ids, parallel to dst *)
  srt : int_bigarray; (* 2m: positions permuted per segment by ascending dst *)
  (* lazily computed structural fingerprint; 0L = not yet computed.  The
     write is a benign race: every domain computes the same value. *)
  mutable fp : Memo.Fingerprint.t;
}

let n g = g.n
let m g = g.m

(* Invariants justifying every [unsafe_get] below (established by [seal],
   the only constructor of [t]):
   - [seg] has n+1 ascending entries with seg.(0) = 0 and seg.(n) = 2m, so
     for v in [0,n) both seg.(v) and seg.(v+1) are valid indices and every
     CSR position p with seg.(v) <= p < seg.(v+1) lies in [0, 2m).
   - [dst], [eid], [srt] have exactly 2m entries; [srt] is a permutation
     of [0, 2m) mapping each segment onto itself.
   - [esrc] and [edst] both have exactly m entries.
   Each accessor bounds-checks its *argument* (vertex or edge id) with one
   safe [Ba.get]; everything derived from a checked argument is accessed
   with [Ba.unsafe_get] under the invariants above. *)

let[@inline] edge_u g e = Ba.get g.esrc e
let[@inline] edge_v g e = Ba.get g.edst e

let[@inline] edge g e =
  (* the safe get checks e; edst has the same length as esrc *)
  (Ba.get g.esrc e, Ba.unsafe_get g.edst e)

let edges g =
  Array.init g.m (fun e -> (Ba.unsafe_get g.esrc e, Ba.unsafe_get g.edst e))

let[@inline] degree g v =
  (* the safe get on seg.(v) checks v; seg.(v+1) is then in range *)
  let lo = Ba.get g.seg v in
  Ba.unsafe_get g.seg (v + 1) - lo

let[@inline] adj_offset g v = Ba.get g.seg v
let[@inline] adj_dst g p = Ba.get g.dst p
let[@inline] adj_eid g p = Ba.get g.eid p

let iter_adj g v f =
  let lo = Ba.get g.seg v and hi = Ba.unsafe_get g.seg (v + 1) in
  for p = lo to hi - 1 do
    f (Ba.unsafe_get g.dst p) (Ba.unsafe_get g.eid p)
  done

let fold_adj g v ~init ~f =
  let lo = Ba.get g.seg v and hi = Ba.unsafe_get g.seg (v + 1) in
  let acc = ref init in
  for p = lo to hi - 1 do
    acc := f !acc (Ba.unsafe_get g.dst p) (Ba.unsafe_get g.eid p)
  done;
  !acc

let exists_adj g v pred =
  let lo = Ba.get g.seg v and hi = Ba.unsafe_get g.seg (v + 1) in
  let p = ref lo in
  let found = ref false in
  while (not !found) && !p < hi do
    found := pred (Ba.unsafe_get g.dst !p) (Ba.unsafe_get g.eid !p);
    incr p
  done;
  !found

let neighbors g v =
  let lo = Ba.get g.seg v in
  let d = Ba.unsafe_get g.seg (v + 1) - lo in
  Array.init d (fun i -> Ba.unsafe_get g.dst (lo + i))

let[@inline] other_endpoint g e v =
  let u = Ba.get g.esrc e in
  let w = Ba.unsafe_get g.edst e in
  if v = u then w
  else if v = w then u
  else invalid_arg "Graph.other_endpoint: vertex not on edge"

(* binary search over the per-segment sorted permutation: srt positions
   seg.(u)..seg.(u+1)-1 list u's incident pairs by ascending neighbor id,
   and neighbor ids are unique within a segment (no parallel edges), so
   the result does not depend on the sort algorithm that built srt *)
let find_edge_id g u v =
  let lo = ref (Ba.get g.seg u) and hi = ref (Ba.unsafe_get g.seg (u + 1)) in
  let res = ref (-1) in
  while !res < 0 && !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let p = Ba.unsafe_get g.srt mid in
    let w = Ba.unsafe_get g.dst p in
    if w = v then res := Ba.unsafe_get g.eid p
    else if w < v then lo := mid + 1
    else hi := mid
  done;
  !res

let find_edge g u v = match find_edge_id g u v with -1 -> None | e -> Some e
let[@inline] mem_edge g u v = find_edge_id g u v >= 0

let iter_edges g f =
  for e = 0 to g.m - 1 do
    f e (Ba.unsafe_get g.esrc e) (Ba.unsafe_get g.edst e)
  done

let fold_edges g ~init ~f =
  let acc = ref init in
  iter_edges g (fun e u v -> acc := f !acc e u v);
  !acc

let heap_bytes g =
  8
  * (Ba.dim g.esrc + Ba.dim g.edst + Ba.dim g.seg + Ba.dim g.dst
   + Ba.dim g.eid + Ba.dim g.srt)

let fingerprint g =
  if g.fp <> 0L then g.fp
  else begin
    let h = ref Memo.Fingerprint.(empty |> string "graph" |> int g.n) in
    iter_edges g (fun _ u v -> h := Memo.Fingerprint.(!h |> int u |> int v));
    let h = if !h = 0L then 1L else !h in
    g.fp <- h;
    h
  end

(* -- per-segment sort for [srt]: iterative heapsort on a slice of the
   permutation, keyed by dst.(srt.(i)).  Heapsort keeps the worst case
   O(d log d) for high-degree hubs (RMAT, complete graphs) without
   recursion or allocation; keys are unique per segment, so the output is
   the unique sorted order. -- *)

let sort_segment srt dst lo hi =
  let len = hi - lo in
  if len > 1 then begin
    let key i = Ba.unsafe_get dst (Ba.unsafe_get srt (lo + i)) in
    let swap i j =
      let t = Ba.unsafe_get srt (lo + i) in
      Ba.unsafe_set srt (lo + i) (Ba.unsafe_get srt (lo + j));
      Ba.unsafe_set srt (lo + j) t
    in
    let sift_down root last =
      let i = ref root in
      let walking = ref true in
      while !walking do
        let child = (2 * !i) + 1 in
        if child > last then walking := false
        else begin
          let child =
            if child < last && key child < key (child + 1) then child + 1
            else child
          in
          if key !i < key child then begin
            swap !i child;
            i := child
          end
          else walking := false
        end
      done
    in
    for root = (len - 2) / 2 downto 0 do
      sift_down root (len - 1)
    done;
    for last = len - 1 downto 1 do
      swap 0 last;
      sift_down 0 (last - 1)
    done
  end

(* -- construction -- *)

let seal n m esrc edst =
  (* counting pass: degrees accumulated into seg, then prefix-summed *)
  let seg = ints (n + 1) in
  Ba.fill seg 0;
  for e = 0 to m - 1 do
    let u = Ba.unsafe_get esrc e and v = Ba.unsafe_get edst e in
    Ba.unsafe_set seg (u + 1) (Ba.unsafe_get seg (u + 1) + 1);
    Ba.unsafe_set seg (v + 1) (Ba.unsafe_get seg (v + 1) + 1)
  done;
  for v = 1 to n do
    Ba.unsafe_set seg v (Ba.unsafe_get seg v + Ba.unsafe_get seg (v - 1))
  done;
  (* fill pass in ascending edge id, source endpoint first: reproduces the
     historical edge-insertion adjacency order exactly *)
  let dst = ints (2 * m) and eid = ints (2 * m) in
  let cursor = ints (max 1 n) in
  for v = 0 to n - 1 do
    Ba.unsafe_set cursor v (Ba.unsafe_get seg v)
  done;
  for e = 0 to m - 1 do
    let u = Ba.unsafe_get esrc e and v = Ba.unsafe_get edst e in
    let pu = Ba.unsafe_get cursor u in
    Ba.unsafe_set dst pu v;
    Ba.unsafe_set eid pu e;
    Ba.unsafe_set cursor u (pu + 1);
    let pv = Ba.unsafe_get cursor v in
    Ba.unsafe_set dst pv u;
    Ba.unsafe_set eid pv e;
    Ba.unsafe_set cursor v (pv + 1)
  done;
  let srt = ints (2 * m) in
  if 2 * m <= 1 lsl 16 then begin
    (* small graphs: identity permutation + per-segment heapsort *)
    for p = 0 to (2 * m) - 1 do
      Ba.unsafe_set srt p p
    done;
    for v = 0 to n - 1 do
      sort_segment srt dst (Ba.unsafe_get seg v) (Ba.unsafe_get seg (v + 1))
    done
  end
  else begin
    (* scale path: one global stable radix sort of positions by neighbor
       id, then a stable counting scatter by segment owner (reusing seg as
       the histogram via cursor).  Stability keeps positions of each
       segment in ascending-dst order after the scatter, and neighbor ids
       are unique per segment, so the result is the same unique sorted
       permutation the heapsort produces — at O(2m) passes instead of
       O(d log d) per hub segment. *)
    let keys = ints (2 * m) and pos = ints (2 * m) in
    Ba.blit dst keys;
    for p = 0 to (2 * m) - 1 do
      Ba.unsafe_set pos p p
    done;
    Sort.sort_pairs keys pos;
    let owner = ints (2 * m) in
    for v = 0 to n - 1 do
      for p = Ba.unsafe_get seg v to Ba.unsafe_get seg (v + 1) - 1 do
        Ba.unsafe_set owner p v
      done
    done;
    for v = 0 to n - 1 do
      Ba.unsafe_set cursor v (Ba.unsafe_get seg v)
    done;
    for i = 0 to (2 * m) - 1 do
      let p = Ba.unsafe_get pos i in
      let v = Ba.unsafe_get owner p in
      let c = Ba.unsafe_get cursor v in
      Ba.unsafe_set srt c p;
      Ba.unsafe_set cursor v (c + 1)
    done
  end;
  { n; m; esrc; edst; seg; dst; eid; srt; fp = 0L }

module Builder = struct
  type graph = t

  type t = {
    bn : int;
    mutable us : int_bigarray;
    mutable vs : int_bigarray;
    mutable len : int;
  }

  let create ?(edges_hint = 64) bn =
    if bn < 0 then invalid_arg "Graph.Builder.create: negative n";
    let cap = max 1 edges_hint in
    { bn; us = ints cap; vs = ints cap; len = 0 }

  let raw_count b = b.len

  let grow b =
    let cap = 2 * Ba.dim b.us in
    let us = ints cap and vs = ints cap in
    Ba.blit (Ba.sub b.us 0 b.len) (Ba.sub us 0 b.len);
    Ba.blit (Ba.sub b.vs 0 b.len) (Ba.sub vs 0 b.len);
    b.us <- us;
    b.vs <- vs

  let add_edge b u v =
    if u < 0 || u >= b.bn || v < 0 || v >= b.bn then
      invalid_arg "Graph.Builder.add_edge: vertex out of range";
    if u <> v then begin
      if b.len = Ba.dim b.us then grow b;
      Ba.unsafe_set b.us b.len u;
      Ba.unsafe_set b.vs b.len v;
      b.len <- b.len + 1
    end

  (* Dedup without hash tables: group raw pairs by their min endpoint with
     a counting scatter, then detect repeats inside each group with a
     per-vertex stamp array.  Duplicates of an edge (in either
     orientation) always share the min endpoint, hence the group; the
     scatter visits raw indices in ascending order, so within a group the
     first entry seen is the globally first occurrence — reproducing the
     historical Hashtbl first-occurrence semantics — and the final
     numbering pass walks raw indices ascending, so surviving edges keep
     their global insertion order. *)
  let build b =
    let n = b.bn and raw = b.len in
    let start = ints (n + 1) in
    Ba.fill start 0;
    for i = 0 to raw - 1 do
      let u = Ba.unsafe_get b.us i and v = Ba.unsafe_get b.vs i in
      let lo = if u < v then u else v in
      Ba.unsafe_set start (lo + 1) (Ba.unsafe_get start (lo + 1) + 1)
    done;
    for v = 1 to n do
      Ba.unsafe_set start v (Ba.unsafe_get start v + Ba.unsafe_get start (v - 1))
    done;
    let bucket = ints (max 1 raw) in
    let cursor = ints (max 1 n) in
    for v = 0 to n - 1 do
      Ba.unsafe_set cursor v (Ba.unsafe_get start v)
    done;
    for i = 0 to raw - 1 do
      let u = Ba.unsafe_get b.us i and v = Ba.unsafe_get b.vs i in
      let lo = if u < v then u else v in
      let p = Ba.unsafe_get cursor lo in
      Ba.unsafe_set bucket p i;
      Ba.unsafe_set cursor lo (p + 1)
    done;
    (* seen.(w) = u marks "edge {u,w} already kept" while scanning u's
       group; groups are scanned in ascending u and w > u always, so a
       stale stamp from an earlier group can never equal the current u *)
    let seen = ints (max 1 n) in
    Ba.fill seen (-1);
    let keep = Bytes.make (max 1 raw) '\000' in
    let m = ref 0 in
    for u = 0 to n - 1 do
      for p = Ba.unsafe_get start u to Ba.unsafe_get start (u + 1) - 1 do
        let i = Ba.unsafe_get bucket p in
        let a = Ba.unsafe_get b.us i and c = Ba.unsafe_get b.vs i in
        let w = if a = u then c else a in
        if Ba.unsafe_get seen w <> u then begin
          Ba.unsafe_set seen w u;
          Bytes.unsafe_set keep i '\001';
          incr m
        end
      done
    done;
    let m = !m in
    let esrc = ints (max 1 m) and edst = ints (max 1 m) in
    let e = ref 0 in
    for i = 0 to raw - 1 do
      if Bytes.unsafe_get keep i = '\001' then begin
        Ba.unsafe_set esrc !e (Ba.unsafe_get b.us i);
        Ba.unsafe_set edst !e (Ba.unsafe_get b.vs i);
        incr e
      end
    done;
    seal n m esrc edst
end

let of_edges n raw =
  if n < 0 then invalid_arg "Graph.of_edges: negative n";
  let b = Builder.create ~edges_hint:(List.length raw) n in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Graph.of_edges: vertex out of range";
      Builder.add_edge b u v)
    raw;
  Builder.build b

let complete n =
  let acc = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      acc := (u, v) :: !acc
    done
  done;
  of_edges n !acc

type weights = float array

let unit_weights g = Array.make (m g) 1.0

let random_weights ?state g =
  let st = match state with Some s -> s | None -> Random.State.make [| 42 |] in
  let m = m g in
  if Fastrand.active () then begin
    (* same stream, same values: [Random.State.float st 1.0] is
       rawfloat *. 1.0, and [draw53] is that rawfloat's mantissa — but
       the draw stays unboxed, which matters at m ~ 10^7 *)
    let w = Array.make m 0.0 in
    for e = 0 to m - 1 do
      w.(e) <- (float_of_int (Fastrand.draw53 st) *. 0x1.p-53) +. 1e-9
    done;
    w
  end
  else Array.init m (fun _ -> Random.State.float st 1.0 +. 1e-9)

let pp ppf g = Fmt.pf ppf "graph(n=%d, m=%d)" g.n (m g)
