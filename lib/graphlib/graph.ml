type t = {
  n : int;
  edges : (int * int) array;
  adj : (int * int) array array;
  (* [adj] sorted by neighbor id, built once at construction: the lookup
     index behind [find_edge]/[mem_edge].  Kept separate from [adj] so
     adjacency *iteration* order (edge-insertion order) — which BFS tie
     breaking, Voronoi growth and hence every recorded experiment number
     depends on — is unchanged. *)
  adj_sorted : (int * int) array array;
  (* lazily computed structural fingerprint; 0L = not yet computed.  The
     write is a benign race: every domain computes the same value. *)
  mutable fp : Memo.Fingerprint.t;
}

let n g = g.n
let m g = Array.length g.edges
let edge g e = g.edges.(e)
let edges g = g.edges
let adj g v = g.adj.(v)
let neighbors g v = Array.map fst g.adj.(v)
let degree g v = Array.length g.adj.(v)

let other_endpoint g e v =
  let u, w = g.edges.(e) in
  if v = u then w
  else if v = w then u
  else invalid_arg "Graph.other_endpoint: vertex not on edge"

(* the sorted index makes adjacency queries a binary search, O(log degree)
   instead of O(degree); neighbor ids are unique per vertex (no parallel
   edges), so the search key is total *)
let find_edge g u v =
  let a = g.adj_sorted.(u) in
  let lo = ref 0 and hi = ref (Array.length a) in
  let found = ref None in
  while !found = None && !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let w, e = a.(mid) in
    if w = v then found := Some e
    else if w < v then lo := mid + 1
    else hi := mid
  done;
  !found

(* allocation-free variant for the CONGEST hot path: -1 instead of None *)
let find_edge_id g u v =
  let a = g.adj_sorted.(u) in
  let lo = ref 0 and hi = ref (Array.length a) and res = ref (-1) in
  while !res < 0 && !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let w, e = a.(mid) in
    if w = v then res := e else if w < v then lo := mid + 1 else hi := mid
  done;
  !res

let mem_edge g u v = find_edge g u v <> None

let fingerprint g =
  if g.fp <> 0L then g.fp
  else begin
    let h = ref Memo.Fingerprint.(empty |> string "graph" |> int g.n) in
    Array.iter
      (fun (u, v) -> h := Memo.Fingerprint.(!h |> int u |> int v))
      g.edges;
    let h = if !h = 0L then 1L else !h in
    g.fp <- h;
    h
  end

let of_edges n raw =
  if n < 0 then invalid_arg "Graph.of_edges: negative n";
  let seen = Hashtbl.create (2 * List.length raw + 1) in
  let keep =
    List.filter
      (fun (u, v) ->
        if u < 0 || u >= n || v < 0 || v >= n then
          invalid_arg "Graph.of_edges: vertex out of range";
        if u = v then false
        else
          let key = if u < v then (u, v) else (v, u) in
          if Hashtbl.mem seen key then false
          else begin
            Hashtbl.add seen key ();
            true
          end)
      raw
  in
  let edges = Array.of_list keep in
  let deg = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edges;
  let adj = Array.init n (fun v -> Array.make deg.(v) (0, 0)) in
  let fill = Array.make n 0 in
  Array.iteri
    (fun e (u, v) ->
      adj.(u).(fill.(u)) <- (v, e);
      fill.(u) <- fill.(u) + 1;
      adj.(v).(fill.(v)) <- (u, e);
      fill.(v) <- fill.(v) + 1)
    edges;
  let adj_sorted =
    Array.map
      (fun a ->
        let s = Array.copy a in
        Array.sort (fun (w1, _) (w2, _) -> compare w1 w2) s;
        s)
      adj
  in
  { n; edges; adj; adj_sorted; fp = 0L }

let complete n =
  let acc = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      acc := (u, v) :: !acc
    done
  done;
  of_edges n !acc

let iter_edges g f = Array.iteri (fun e (u, v) -> f e u v) g.edges

let fold_edges g ~init ~f =
  let acc = ref init in
  Array.iteri (fun e (u, v) -> acc := f !acc e u v) g.edges;
  !acc

type weights = float array

let unit_weights g = Array.make (m g) 1.0

let random_weights ?state g =
  let st = match state with Some s -> s | None -> Random.State.make [| 42 |] in
  Array.init (m g) (fun _ -> Random.State.float st 1.0 +. 1e-9)

let pp ppf g = Fmt.pf ppf "graph(n=%d, m=%d)" g.n (m g)
