(* Allocation-free access to the stdlib LXM random stream (DESIGN.md §15).

   [Random.State.float st 1.0] costs several minor-heap allocations per
   draw without flambda: the boxed Int64 intermediates of [rawfloat] and
   the boxed float result.  At RMAT scale that is the dominant cost of
   graph generation — 20 draws per sampled edge, ~1.7e8 draws for the S1
   rmat-s20-ef8 build, all boxed.

   The stdlib's own primitive is an unboxed [@@noalloc] external
   ([caml_lxm_next], OCaml >= 5.0), so we re-declare it here and fold the
   exact [rawfloat] post-processing (shift, zero-retry) into [draw53],
   which returns the 53-bit mantissa as an immediate int — zero
   allocations end to end.  Callers reconstruct the float locally with
   [float_of_int d *. 0x1.p-53], which ocamlopt keeps unboxed inside a
   loop body.

   Exactness contract: [float_of_int (draw53 st) *. 0x1.p-53] must be
   bit-identical to [Random.State.float st 1.0] AND consume the stream
   identically (one [caml_lxm_next] per retry, retrying while the
   53-bit value is zero).  Both operations are exact: the shifted draw is
   an integer below 2^53, so [float_of_int] is lossless, and scaling by a
   power of two only adjusts the exponent.  [verify] replays 512 draws
   against the stdlib on a copied state at startup; if a future stdlib
   changes [rawfloat], [active] turns false and every caller falls back
   to the boxed stdlib path, keeping streams byte-identical at the old
   cost.  (If the runtime ever drops the primitive itself, the build
   fails at link time — loudly, not wrongly.) *)

external lxm_next : Random.State.t -> (int64[@unboxed])
  = "caml_lxm_next" "caml_lxm_next_unboxed"
[@@noalloc]

let rec draw53 st =
  let d = Int64.to_int (Int64.shift_right_logical (lxm_next st) 11) in
  if d = 0 then draw53 st else d

let verify () =
  let a = Random.State.make [| 0x5EED; 0xFA57 |] in
  let b = Random.State.copy a in
  let ok = ref true in
  for _ = 1 to 512 do
    let reference = Random.State.float a 1.0 in
    let fast = float_of_int (draw53 b) *. 0x1.p-53 in
    if not (Float.equal reference fast) then ok := false
  done;
  !ok

let active_v = lazy (verify ())
let active () = Lazy.force active_v
