(** Generators for every graph family the paper discusses.

    Planar generators also return a straight-line embedding (coordinates) and
    the outer face, which the combinatorial-gate construction (paper Lemma 7)
    and the vortex construction (Definition 4) consume. *)

type planar = {
  graph : Graph.t;
  coords : (float * float) array;  (** straight-line planar embedding *)
  outer_face : int array;  (** outer boundary cycle, in order *)
}

(** {1 Elementary families} *)

val path : int -> Graph.t
val cycle : int -> Graph.t

val star : int -> Graph.t
(** Center is vertex 0. *)

val wheel : int -> Graph.t
(** Cycle of [n-1] outer vertices plus a hub (vertex [n-1]): the paper's
    running example of an apex collapsing the diameter. *)

val complete_bipartite : int -> int -> Graph.t
val binary_tree : int -> Graph.t
val petersen : unit -> Graph.t
val random_tree : seed:int -> int -> Graph.t

val erdos_renyi : seed:int -> int -> float -> Graph.t
(** G(n,p); retried until connected (caller should keep [p] above the
    connectivity threshold). *)

(** {1 Planar families (exclude K5 and K3,3)} *)

val grid : int -> int -> planar
(** [grid w h]: the w x h grid with unit coordinates; diameter [w+h-2]. *)

val apollonian : seed:int -> int -> planar
(** Random Apollonian network (random maximal planar graph) on [n >= 3]
    vertices, built by repeated face subdivision; straight-line embedded. *)

(** {1 Bounded-treewidth families} *)

val series_parallel : seed:int -> int -> Graph.t
(** Random series-parallel graph (treewidth <= 2, excludes K4) built by random
    series/parallel compositions between terminals 0 and 1. *)

val k_tree : seed:int -> k:int -> int -> Graph.t * int array
(** Random k-tree on [n] vertices plus a perfect elimination order witness
    (vertices in reverse insertion order); treewidth exactly [k] for
    [n > k]. *)

(** {1 Surfaces} *)

val torus_grid : int -> int -> Graph.t
(** [torus_grid w h]: grid with wraparound in both dimensions; genus 1. *)

val grid_with_handles : seed:int -> int -> int -> int -> planar * Graph.t
(** [grid_with_handles ~seed w h g] returns the underlying planar grid and the
    same grid with [g] extra "handle" edges between random distant boundary
    vertices; Euler genus at most [g]. *)

(** {1 Apexes and the lower-bound family} *)

val add_apices : seed:int -> Graph.t -> q:int -> fanout:int -> Graph.t
(** Add [q] apex vertices (new ids [n..n+q-1]), each connected to [fanout]
    random old vertices, to each other, and to at least one old vertex so the
    result stays connected. *)

val cycle_with_apex : int -> Graph.t
(** The wheel built as cycle + universal apex: diameter collapses from
    [n/2] to 2 (paper §2.3.2's motivating example). *)

val lower_bound : int -> Graph.t * int array
(** [lower_bound p]: the Peleg–Rubinovich / [SHK+12]-style hard family
    Gamma(p): [p] disjoint paths of length [p] plus a balanced binary tree
    over the columns, whose leaf [j] connects to the j-th vertex of every
    path. Diameter O(log p) with n = Theta(p^2), yet any shortcut solution
    has quality Omega(p) = Omega(sqrt n). Also returns the array of path
    starting vertices (the canonical "parts" are the paths). *)

val lower_bound_parts : int -> Graph.t * int list list
(** Same graph plus the canonical partition into the [p] paths. *)

(** {1 Stress families (not minor-free)} *)

val rmat :
  ?state:Random.State.t ->
  ?a:float ->
  ?b:float ->
  ?c:float ->
  seed:int ->
  scale:int ->
  edge_factor:int ->
  unit ->
  Graph.t
(** [rmat ~seed ~scale ~edge_factor ()] is the recursive-matrix (Graph500
    style) power-law generator on [n = 2^scale] vertices from
    [edge_factor * n] quadrant-recursive samples with probabilities
    [(a, b, c, 1-a-b-c)] (defaults 0.57/0.19/0.19); self-loops and
    duplicate samples are dropped, so [m] lands slightly below
    [edge_factor * n].  Not minor-free and heavy-tailed — the stress
    family for the CSR substrate, not a shortcut-friendly input.
    Deterministic in [seed] and memoized; pass [state] (e.g. a
    [Faults.Rng] stream) to drive sampling from an external stream
    instead, which bypasses the cache. *)

val rmat_fast_sampler_active : unit -> bool
(** Diagnostics: whether RMAT sampling runs on the unboxed
    [Fastrand.draw53] path (stream-identical to the boxed stdlib path —
    the generated graphs never differ; only allocation and speed do). *)
