type t = { parent : int array; rank : int array; sz : int array; mutable sets : int }

let create n =
  { parent = Array.init n (fun i -> i); rank = Array.make n 0; sz = Array.make n 1; sets = n }

(* iterative path halving: every other node on the walk is re-pointed at
   its grandparent.  Same amortized alpha(n) bound as full compression,
   no recursion (stack-safe on 10^6-element paths), one pass. *)
let find t x =
  let parent = t.parent in
  let x = ref x in
  while parent.(!x) <> !x do
    let gp = parent.(parent.(!x)) in
    parent.(!x) <- gp;
    x := gp
  done;
  !x

let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then false
  else begin
    let ra, rb = if t.rank.(ra) < t.rank.(rb) then (rb, ra) else (ra, rb) in
    t.parent.(rb) <- ra;
    t.sz.(ra) <- t.sz.(ra) + t.sz.(rb);
    if t.rank.(ra) = t.rank.(rb) then t.rank.(ra) <- t.rank.(ra) + 1;
    t.sets <- t.sets - 1;
    true
  end

let same t a b = find t a = find t b
let count t = t.sets
let size t x = t.sz.(find t x)
