(** Binary min-heap priority queue over float priorities. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int
val push : 'a t -> float -> 'a -> unit
val pop : 'a t -> (float * 'a) option
(** Removes and returns the minimum-priority element. *)

val peek : 'a t -> (float * 'a) option

(** Event-queue min-heap for discrete-event simulation: entries are keyed
    by the lexicographic composite [(time, a, b)] — for the async CONGEST
    executor, [(delivery_time, edge_id, seq)] — so same-instant events pop
    in a replay-exact deterministic order.  Payloads are immediate ints
    (indices into a caller-owned event arena); a push allocates nothing
    once the backing stores have grown.  There is no [decrease_key]: a
    scheduled event never reschedules. *)
module Event : sig
  type t

  val create : unit -> t
  val is_empty : t -> bool
  val size : t -> int

  val high_water : t -> int
  (** Max [size] ever observed — the event-queue depth gauge. *)

  val push : t -> time:float -> a:int -> b:int -> int -> unit

  val pop : t -> (float * int) option
  (** Minimum-key event as [(time, payload)]. *)

  val peek_time : t -> float option
end
