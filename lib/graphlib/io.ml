let to_string ?weights g =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "%d %d\n" (Graph.n g) (Graph.m g));
  Graph.iter_edges g (fun e u v ->
      match weights with
      | Some w -> Buffer.add_string buf (Printf.sprintf "%d %d %.12g\n" u v w.(e))
      | None -> Buffer.add_string buf (Printf.sprintf "%d %d\n" u v));
  Buffer.contents buf

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  match lines with
  | [] -> invalid_arg "Io.of_string: empty input"
  | header :: rest ->
      let n, m =
        match String.split_on_char ' ' header |> List.filter (( <> ) "") with
        | [ a; b ] -> (int_of_string a, int_of_string b)
        | _ -> invalid_arg "Io.of_string: bad header"
      in
      let edges = ref [] in
      let weights = ref [] in
      let weighted = ref None in
      List.iter
        (fun line ->
          match String.split_on_char ' ' line |> List.filter (( <> ) "") with
          | [ u; v ] ->
              (match !weighted with
              | Some true -> invalid_arg "Io.of_string: mixed weighted/unweighted"
              | _ -> weighted := Some false);
              edges := (int_of_string u, int_of_string v) :: !edges
          | [ u; v; w ] ->
              (match !weighted with
              | Some false -> invalid_arg "Io.of_string: mixed weighted/unweighted"
              | _ -> weighted := Some true);
              edges := (int_of_string u, int_of_string v) :: !edges;
              weights := float_of_string w :: !weights
          | _ -> invalid_arg "Io.of_string: bad edge line")
        rest;
      if List.length !edges <> m then invalid_arg "Io.of_string: edge count mismatch";
      let g = Graph.of_edges n (List.rev !edges) in
      let w =
        match !weighted with
        | Some true ->
            (* graph construction dedupes; only safe when input has no dups *)
            if Graph.m g <> m then
              invalid_arg "Io.of_string: duplicate edges in weighted input"
            else Some (Array.of_list (List.rev !weights))
        | _ -> None
      in
      (g, w)

let write_file path ?weights g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?weights g))

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      of_string s)

(* -- raw edge-list ingestion (SNAP / DIMACS-download style): no header,
   one whitespace-separated "u v" pair per line.  Tolerant of what the
   usual gunzip-piped datasets contain — '#' and '%' comment lines, blank
   lines, tab separation, an optional third column (a weight or timestamp,
   ignored) — and strict about everything else, failing with the 1-based
   line number so a malformed multi-gigabyte download points at the bad
   line instead of dying deep in the builder. -- *)

let edge_list_error lineno msg =
  invalid_arg (Printf.sprintf "Io.of_edge_list: line %d: %s" lineno msg)

let of_edge_list ?n s =
  let us = ref [] and vs = ref [] and count = ref 0 and max_id = ref (-1) in
  let lineno = ref 0 in
  let handle_line line =
    incr lineno;
    let line =
      match String.index_opt line '\r' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    let is_comment =
      String.length line > 0 && (line.[0] = '#' || line.[0] = '%')
    in
    if not is_comment then begin
      let fields =
        String.split_on_char '\t' line
        |> List.concat_map (String.split_on_char ' ')
        |> List.filter (( <> ) "")
      in
      let parse_vertex tok =
        match int_of_string_opt tok with
        | Some v when v >= 0 -> v
        | Some _ -> edge_list_error !lineno (Printf.sprintf "negative vertex id %S" tok)
        | None -> edge_list_error !lineno (Printf.sprintf "not a vertex id: %S" tok)
      in
      match fields with
      | [] -> ()
      | [ u; v ] | [ u; v; _ ] ->
          let u = parse_vertex u and v = parse_vertex v in
          us := u :: !us;
          vs := v :: !vs;
          incr count;
          if u > !max_id then max_id := u;
          if v > !max_id then max_id := v
      | _ ->
          edge_list_error !lineno
            (Printf.sprintf "expected \"u v\" (got %d fields)" (List.length fields))
    end
  in
  String.split_on_char '\n' s |> List.iter handle_line;
  let inferred = !max_id + 1 in
  let n =
    match n with
    | None -> inferred
    | Some n when n >= inferred -> n
    | Some n ->
        invalid_arg
          (Printf.sprintf "Io.of_edge_list: n = %d but input mentions vertex %d" n !max_id)
  in
  let b = Graph.Builder.create ~edges_hint:!count n in
  (* the accumulators are reversed; walk them together from the back *)
  let us = Array.of_list !us and vs = Array.of_list !vs in
  for i = !count - 1 downto 0 do
    Graph.Builder.add_edge b us.(i) vs.(i)
  done;
  Graph.Builder.build b

let read_edge_list ?n path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      of_edge_list ?n s)
