(** Flat byte-backed bitset over a fixed universe [0, n).

    The visited-set primitive for BFS/DFS frontiers on the scale path:
    one byte per 8 vertices (a 2^20-vertex set fits in 128 KiB), every
    operation two shifts and a mask, no per-element allocation.
    Out-of-range indices raise [Invalid_argument]. *)

type t

val create : int -> t
(** [create n] is the empty set over universe [0, n). *)

val length : t -> int
(** Universe size [n]. *)

val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit

val add_new : t -> int -> bool
(** [add_new t i] adds [i] and returns [true] iff it was absent — the
    BFS "visit if new" step in a single probe. *)

val clear : t -> unit
(** Remove all elements (constant-ish: one [Bytes.fill]). *)

val cardinal : t -> int

val iter : (int -> unit) -> t -> unit
(** [iter f t] applies [f] to members in increasing order. *)
