(* Flat-worklist traversals (DESIGN.md §15).

   Every BFS here replaces the old [Queue.t] (a boxed cell per push) with
   a flat int array scanned by two cursors: for FIFO BFS, push order
   equals pop order, so the worklist IS the visit order and the results
   are byte-identical to the Queue versions — same distances, same
   parents, same owner tie-breaking — with zero per-vertex allocation.
   Membership tests ride on the dist/label arrays where one exists and on
   a [Bitset] where one does not. *)

let bfs_into ~dist ~work g src =
  let n = Graph.n g in
  if Array.length dist < n || Array.length work < n then
    invalid_arg "Traversal.bfs_into: buffers shorter than n";
  if src < 0 || src >= n then invalid_arg "Traversal.bfs_into: src out of range";
  Array.fill dist 0 n (-1);
  dist.(src) <- 0;
  work.(0) <- src;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let v = work.(!head) in
    incr head;
    let dv = dist.(v) + 1 in
    Graph.iter_adj g v (fun w _ ->
        if dist.(w) < 0 then begin
          dist.(w) <- dv;
          work.(!tail) <- w;
          incr tail
        end)
  done

let bfs g src =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let work = Array.make n 0 in
  bfs_into ~dist ~work g src;
  dist

let bfs_tree g src =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let parent = Array.make n (-1) in
  let work = Array.make n 0 in
  dist.(src) <- 0;
  work.(0) <- src;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let v = work.(!head) in
    incr head;
    let dv = dist.(v) + 1 in
    Graph.iter_adj g v (fun w _ ->
        if dist.(w) < 0 then begin
          dist.(w) <- dv;
          parent.(w) <- v;
          work.(!tail) <- w;
          incr tail
        end)
  done;
  (parent, dist)

let multi_source_bfs g srcs =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let owner = Array.make n (-1) in
  let work = Array.make n 0 in
  let tail = ref 0 in
  (* seeds enter in [srcs] order, which is the tie-breaking contract *)
  Array.iteri
    (fun i s ->
      if dist.(s) < 0 then begin
        dist.(s) <- 0;
        owner.(s) <- i;
        work.(!tail) <- s;
        incr tail
      end)
    srcs;
  let head = ref 0 in
  while !head < !tail do
    let v = work.(!head) in
    incr head;
    let dv = dist.(v) + 1 in
    Graph.iter_adj g v (fun w _ ->
        if dist.(w) < 0 then begin
          dist.(w) <- dv;
          owner.(w) <- owner.(v);
          work.(!tail) <- w;
          incr tail
        end)
  done;
  (owner, dist)

let restricted_bfs g ~allowed src =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  if not allowed.(src) then dist
  else begin
    let work = Array.make n 0 in
    dist.(src) <- 0;
    work.(0) <- src;
    let head = ref 0 and tail = ref 1 in
    while !head < !tail do
      let v = work.(!head) in
      incr head;
      let dv = dist.(v) + 1 in
      Graph.iter_adj g v (fun w _ ->
          if allowed.(w) && dist.(w) < 0 then begin
            dist.(w) <- dv;
            work.(!tail) <- w;
            incr tail
          end)
    done;
    dist
  end

let components g =
  let n = Graph.n g in
  let label = Array.make n (-1) in
  let work = Array.make n 0 in
  let c = ref 0 in
  for s = 0 to n - 1 do
    if label.(s) < 0 then begin
      label.(s) <- !c;
      work.(0) <- s;
      let head = ref 0 and tail = ref 1 in
      while !head < !tail do
        let v = work.(!head) in
        incr head;
        Graph.iter_adj g v (fun w _ ->
            if label.(w) < 0 then begin
              label.(w) <- !c;
              work.(!tail) <- w;
              incr tail
            end)
      done;
      incr c
    end
  done;
  (label, !c)

let is_connected g =
  if Graph.n g = 0 then true
  else
    let _, c = components g in
    c = 1

let component_of g allowed seed =
  if not allowed.(seed) then []
  else begin
    let n = Graph.n g in
    let seen = Bitset.create n in
    let work = Array.make n 0 in
    let acc = ref [] in
    Bitset.add seen seed;
    work.(0) <- seed;
    let head = ref 0 and tail = ref 1 in
    while !head < !tail do
      let v = work.(!head) in
      incr head;
      acc := v :: !acc;
      Graph.iter_adj g v (fun w _ ->
          if allowed.(w) && Bitset.add_new seen w then begin
            work.(!tail) <- w;
            incr tail
          end)
    done;
    !acc
  end

let is_connected_subset g vs =
  match vs with
  | [] -> true
  | seed :: _ ->
      let allowed = Array.make (Graph.n g) false in
      List.iter (fun v -> allowed.(v) <- true) vs;
      let reached = component_of g allowed seed in
      List.length reached = List.length vs

let dfs_order g src =
  let n = Graph.n g in
  let seen = Bitset.create n in
  let acc = ref [] in
  (* growable int stack: a vertex may be pushed once per incident edge
     before it is first seen, so the stack is bounded by 2m but usually
     tiny — grow geometrically instead of preallocating it *)
  let stack = ref (Array.make 16 0) in
  let top = ref 0 in
  let push v =
    if !top = Array.length !stack then begin
      let bigger = Array.make (2 * Array.length !stack) 0 in
      Array.blit !stack 0 bigger 0 !top;
      stack := bigger
    end;
    !stack.(!top) <- v;
    incr top
  in
  push src;
  while !top > 0 do
    decr top;
    let v = !stack.(!top) in
    if not (Bitset.mem seen v) then begin
      Bitset.add seen v;
      acc := v :: !acc;
      (* push incident edges in reverse CSR order so the first-inserted
         edge is explored first: the preorder of a recursive DFS that
         scans adjacency in edge-insertion order *)
      let lo = Graph.adj_offset g v and hi = Graph.adj_offset g (v + 1) in
      for p = hi - 1 downto lo do
        let w = Graph.adj_dst g p in
        if not (Bitset.mem seen w) then push w
      done
    end
  done;
  Array.of_list (List.rev !acc)
