let bfs g src =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let q = Queue.create () in
  dist.(src) <- 0;
  Queue.push src q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    Graph.iter_adj g v (fun w _ ->
        if dist.(w) < 0 then begin
          dist.(w) <- dist.(v) + 1;
          Queue.push w q
        end)
  done;
  dist

let bfs_tree g src =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let parent = Array.make n (-1) in
  let q = Queue.create () in
  dist.(src) <- 0;
  Queue.push src q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    Graph.iter_adj g v (fun w _ ->
        if dist.(w) < 0 then begin
          dist.(w) <- dist.(v) + 1;
          parent.(w) <- v;
          Queue.push w q
        end)
  done;
  (parent, dist)

let multi_source_bfs g srcs =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let owner = Array.make n (-1) in
  let q = Queue.create () in
  Array.iteri
    (fun i s ->
      if dist.(s) < 0 then begin
        dist.(s) <- 0;
        owner.(s) <- i;
        Queue.push s q
      end)
    srcs;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    Graph.iter_adj g v (fun w _ ->
        if dist.(w) < 0 then begin
          dist.(w) <- dist.(v) + 1;
          owner.(w) <- owner.(v);
          Queue.push w q
        end)
  done;
  (owner, dist)

let restricted_bfs g ~allowed src =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  if not allowed.(src) then dist
  else begin
    let q = Queue.create () in
    dist.(src) <- 0;
    Queue.push src q;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      Graph.iter_adj g v (fun w _ ->
          if allowed.(w) && dist.(w) < 0 then begin
            dist.(w) <- dist.(v) + 1;
            Queue.push w q
          end)
    done;
    dist
  end

let components g =
  let n = Graph.n g in
  let label = Array.make n (-1) in
  let c = ref 0 in
  let q = Queue.create () in
  for s = 0 to n - 1 do
    if label.(s) < 0 then begin
      label.(s) <- !c;
      Queue.push s q;
      while not (Queue.is_empty q) do
        let v = Queue.pop q in
        Graph.iter_adj g v (fun w _ ->
            if label.(w) < 0 then begin
              label.(w) <- !c;
              Queue.push w q
            end)
      done;
      incr c
    end
  done;
  (label, !c)

let is_connected g =
  if Graph.n g = 0 then true
  else
    let _, c = components g in
    c = 1

let component_of g allowed seed =
  if not allowed.(seed) then []
  else begin
    let n = Graph.n g in
    let seen = Array.make n false in
    let acc = ref [] in
    let q = Queue.create () in
    seen.(seed) <- true;
    Queue.push seed q;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      acc := v :: !acc;
      Graph.iter_adj g v (fun w _ ->
          if allowed.(w) && not seen.(w) then begin
            seen.(w) <- true;
            Queue.push w q
          end)
    done;
    !acc
  end

let is_connected_subset g vs =
  match vs with
  | [] -> true
  | seed :: _ ->
      let allowed = Array.make (Graph.n g) false in
      List.iter (fun v -> allowed.(v) <- true) vs;
      let reached = component_of g allowed seed in
      List.length reached = List.length vs

let dfs_order g src =
  let n = Graph.n g in
  let seen = Array.make n false in
  let acc = ref [] in
  let stack = ref [ src ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | v :: rest ->
        stack := rest;
        if not seen.(v) then begin
          seen.(v) <- true;
          acc := v :: !acc;
          (* push incident edges in reverse CSR order so the first-inserted
             edge is explored first: the preorder of a recursive DFS that
             scans adjacency in edge-insertion order *)
          let lo = Graph.adj_offset g v and hi = Graph.adj_offset g (v + 1) in
          for p = hi - 1 downto lo do
            let w = Graph.adj_dst g p in
            if not seen.(w) then stack := w :: !stack
          done
        end
  done;
  Array.of_list (List.rev !acc)
