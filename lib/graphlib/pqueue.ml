(* Binary min-heap over parallel arrays: priorities in a float array
   (unboxed) and payloads in a plain array, instead of one array of boxed
   (float * 'a) tuples — a push costs zero allocations once the backing
   stores have grown, where the tuple layout boxed both the pair and the
   float on every push. *)
type 'a t = {
  mutable prio : float array;
  mutable data : 'a array;
  mutable len : int;
}

let create () = { prio = [||]; data = [||]; len = 0 }
let is_empty q = q.len = 0
let size q = q.len

let grow q item =
  let cap = Array.length q.data in
  if q.len = cap then begin
    let ncap = max 8 (2 * cap) in
    let np = Array.make ncap 0.0 in
    let nd = Array.make ncap item in
    Array.blit q.prio 0 np 0 q.len;
    Array.blit q.data 0 nd 0 q.len;
    q.prio <- np;
    q.data <- nd
  end

let swap q i j =
  let tp = q.prio.(i) and td = q.data.(i) in
  q.prio.(i) <- q.prio.(j);
  q.data.(i) <- q.data.(j);
  q.prio.(j) <- tp;
  q.data.(j) <- td

let push q prio x =
  grow q x;
  q.prio.(q.len) <- prio;
  q.data.(q.len) <- x;
  q.len <- q.len + 1;
  (* sift up *)
  let i = ref (q.len - 1) in
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    if q.prio.(p) > q.prio.(!i) then begin
      swap q p !i;
      i := p
    end
    else continue := false
  done

let peek q = if q.len = 0 then None else Some (q.prio.(0), q.data.(0))

let pop q =
  if q.len = 0 then None
  else begin
    let top = (q.prio.(0), q.data.(0)) in
    q.len <- q.len - 1;
    if q.len > 0 then begin
      q.prio.(0) <- q.prio.(q.len);
      q.data.(0) <- q.data.(q.len);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < q.len && q.prio.(l) < q.prio.(!smallest) then smallest := l;
        if r < q.len && q.prio.(r) < q.prio.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          swap q !smallest !i;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some top
  end
