(* Binary min-heap over parallel arrays: priorities in a float array
   (unboxed) and payloads in a plain array, instead of one array of boxed
   (float * 'a) tuples — a push costs zero allocations once the backing
   stores have grown, where the tuple layout boxed both the pair and the
   float on every push. *)
type 'a t = {
  mutable prio : float array;
  mutable data : 'a array;
  mutable len : int;
}

let create () = { prio = [||]; data = [||]; len = 0 }
let is_empty q = q.len = 0
let size q = q.len

let grow q item =
  let cap = Array.length q.data in
  if q.len = cap then begin
    let ncap = max 8 (2 * cap) in
    let np = Array.make ncap 0.0 in
    let nd = Array.make ncap item in
    Array.blit q.prio 0 np 0 q.len;
    Array.blit q.data 0 nd 0 q.len;
    q.prio <- np;
    q.data <- nd
  end

let swap q i j =
  let tp = q.prio.(i) and td = q.data.(i) in
  q.prio.(i) <- q.prio.(j);
  q.data.(i) <- q.data.(j);
  q.prio.(j) <- tp;
  q.data.(j) <- td

let push q prio x =
  grow q x;
  q.prio.(q.len) <- prio;
  q.data.(q.len) <- x;
  q.len <- q.len + 1;
  (* sift up *)
  let i = ref (q.len - 1) in
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    if q.prio.(p) > q.prio.(!i) then begin
      swap q p !i;
      i := p
    end
    else continue := false
  done

let peek q = if q.len = 0 then None else Some (q.prio.(0), q.data.(0))

(* Event-queue variant: the same parallel-array min-heap, but keyed by
   the composite (time, a, b) compared lexicographically with monomorphic
   comparators, and carrying an immediate int payload.  A discrete-event
   scheduler keys on (delivery_time, edge_id, seq): float time alone
   cannot break ties deterministically (two messages can arrive at the
   same instant), and boxing the key as a tuple would allocate on every
   push.  Four parallel arrays — one float, three int — keep a push
   allocation-free once the backing stores have grown.  decrease_key is
   deliberately absent: an event, once scheduled, never reschedules. *)
module Event = struct
  type t = {
    mutable time : float array;
    mutable ka : int array;
    mutable kb : int array;
    mutable pay : int array;
    mutable len : int;
    mutable hwm : int;
  }

  let create () =
    { time = [||]; ka = [||]; kb = [||]; pay = [||]; len = 0; hwm = 0 }

  let is_empty q = q.len = 0
  let size q = q.len
  let high_water q = q.hwm

  (* strict lexicographic (time, a, b) less-than *)
  let lt q i j =
    let c = Float.compare q.time.(i) q.time.(j) in
    if c <> 0 then c < 0
    else
      let c = Int.compare q.ka.(i) q.ka.(j) in
      if c <> 0 then c < 0 else Int.compare q.kb.(i) q.kb.(j) < 0

  let grow q =
    let cap = Array.length q.pay in
    if q.len = cap then begin
      let ncap = max 8 (2 * cap) in
      let nt = Array.make ncap 0.0 in
      let na = Array.make ncap 0 in
      let nb = Array.make ncap 0 in
      let np = Array.make ncap 0 in
      Array.blit q.time 0 nt 0 q.len;
      Array.blit q.ka 0 na 0 q.len;
      Array.blit q.kb 0 nb 0 q.len;
      Array.blit q.pay 0 np 0 q.len;
      q.time <- nt;
      q.ka <- na;
      q.kb <- nb;
      q.pay <- np
    end

  let swap q i j =
    let t = q.time.(i) and a = q.ka.(i) and b = q.kb.(i) and p = q.pay.(i) in
    q.time.(i) <- q.time.(j);
    q.ka.(i) <- q.ka.(j);
    q.kb.(i) <- q.kb.(j);
    q.pay.(i) <- q.pay.(j);
    q.time.(j) <- t;
    q.ka.(j) <- a;
    q.kb.(j) <- b;
    q.pay.(j) <- p

  let push q ~time ~a ~b payload =
    grow q;
    let i = ref q.len in
    q.time.(!i) <- time;
    q.ka.(!i) <- a;
    q.kb.(!i) <- b;
    q.pay.(!i) <- payload;
    q.len <- q.len + 1;
    if q.len > q.hwm then q.hwm <- q.len;
    let continue = ref true in
    while !continue && !i > 0 do
      let p = (!i - 1) / 2 in
      if lt q !i p then begin
        swap q p !i;
        i := p
      end
      else continue := false
    done

  let peek_time q = if q.len = 0 then None else Some q.time.(0)

  let pop q =
    if q.len = 0 then None
    else begin
      let top = (q.time.(0), q.pay.(0)) in
      q.len <- q.len - 1;
      if q.len > 0 then begin
        q.time.(0) <- q.time.(q.len);
        q.ka.(0) <- q.ka.(q.len);
        q.kb.(0) <- q.kb.(q.len);
        q.pay.(0) <- q.pay.(q.len);
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let smallest = ref !i in
          if l < q.len && lt q l !smallest then smallest := l;
          if r < q.len && lt q r !smallest then smallest := r;
          if !smallest <> !i then begin
            swap q !smallest !i;
            i := !smallest
          end
          else continue := false
        done
      end;
      Some top
    end
end

let pop q =
  if q.len = 0 then None
  else begin
    let top = (q.prio.(0), q.data.(0)) in
    q.len <- q.len - 1;
    if q.len > 0 then begin
      q.prio.(0) <- q.prio.(q.len);
      q.data.(0) <- q.data.(q.len);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < q.len && q.prio.(l) < q.prio.(!smallest) then smallest := l;
        if r < q.len && q.prio.(r) < q.prio.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          swap q !smallest !i;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some top
  end
