(** Immutable undirected graphs with dense vertex and edge identifiers.

    Vertices are integers [0 .. n-1]. Every undirected edge has a unique id
    in [0 .. m-1]; parallel edges and self-loops are rejected at construction
    time (the CONGEST model ignores self-loops, cf. paper §1.3). *)

type t

(** {1 Accessors} *)

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of undirected edges. *)

val edge : t -> int -> int * int
(** [edge g e] is the endpoint pair of edge [e], in insertion order. *)

val edges : t -> (int * int) array
(** All endpoint pairs, indexed by edge id. The array is owned by the graph;
    do not mutate. *)

val adj : t -> int -> (int * int) array
(** [adj g v] lists [(neighbor, edge_id)] pairs incident to [v], in edge
    insertion order. Owned by the graph; do not mutate. *)

val neighbors : t -> int -> int array
(** [neighbors g v] is the neighbor list of [v] (fresh array). *)

val degree : t -> int -> int

val other_endpoint : t -> int -> int -> int
(** [other_endpoint g e v] is the endpoint of [e] distinct from [v].
    @raise Invalid_argument if [v] is not an endpoint of [e]. *)

val mem_edge : t -> int -> int -> bool
(** [mem_edge g u v] tests adjacency (binary search, O(log (degree g u))). *)

val find_edge : t -> int -> int -> int option
(** Edge id joining [u] and [v], if any. *)

val find_edge_id : t -> int -> int -> int
(** Like {!find_edge} but returns [-1] when absent: the allocation-free
    lookup the CONGEST engine's targeted-send path uses. *)

val fingerprint : t -> Memo.Fingerprint.t
(** Structural fingerprint over [n] and the edge array in insertion order;
    computed once and cached on the graph.  The cache key ingredient for
    every graph-derived memoized artifact. *)

(** {1 Construction} *)

val of_edges : int -> (int * int) list -> t
(** [of_edges n edges] builds a graph on [n] vertices. Duplicate edges (in
    either orientation) are merged; self-loops are dropped. *)

val complete : int -> t
(** Complete graph [K_n]. *)

val iter_edges : t -> (int -> int -> int -> unit) -> unit
(** [iter_edges g f] calls [f e u v] for every edge. *)

val fold_edges : t -> init:'a -> f:('a -> int -> int -> int -> 'a) -> 'a

(** {1 Weights}

    Edge weights live outside the graph, keyed by edge id, so the same
    topology can carry many weight functions (random weights for tree
    packing, unit weights for BFS checks, ...). *)

type weights = float array

val unit_weights : t -> weights

val random_weights : ?state:Random.State.t -> t -> weights
(** Distinct-ish uniform weights in (0,1); with a seeded state for
    reproducibility. *)

val pp : t Fmt.t
(** Terse description, ["graph(n=.., m=..)"]. *)
