(** Immutable undirected graphs with dense vertex and edge identifiers,
    stored as a flat CSR (compressed sparse row) structure over
    [Bigarray]-backed int arrays (DESIGN.md section 12).

    Vertices are integers [0 .. n-1]. Every undirected edge has a unique id
    in [0 .. m-1]; parallel edges and self-loops are rejected at construction
    time (the CONGEST model ignores self-loops, cf. paper §1.3).

    Layout contract: for each vertex the CSR segment lists incident
    [(neighbor, edge_id)] pairs in {e edge-insertion order} — BFS tie
    breaking, Voronoi growth and hence every recorded experiment number
    depend on that order.  A per-segment sorted permutation additionally
    supports the O(log degree) binary-search adjacency lookups
    ({!find_edge}/{!mem_edge}).

    The payload lives outside the OCaml heap, so a graph built once is
    shared zero-copy across [Exec.Pool] domains and costs the GC nothing
    to retain — the substrate for n >= 10^6 experiments. *)

type t

type int_bigarray = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
(** The backing store type: one [Bigarray.int] element per entry. *)

(** {1 Accessors} *)

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of undirected edges. *)

val edge : t -> int -> int * int
(** [edge g e] is the endpoint pair of edge [e], in insertion order. *)

val edge_u : t -> int -> int
(** First endpoint of [e] (insertion order) — the allocation-free half of
    {!edge}. *)

val edge_v : t -> int -> int
(** Second endpoint of [e]. *)

val edges : t -> (int * int) array
(** All endpoint pairs, indexed by edge id. Materialized fresh from the CSR
    arrays on every call; prefer {!edge_u}/{!edge_v}/{!iter_edges} on hot
    paths. *)

val degree : t -> int -> int

val iter_adj : t -> int -> (int -> int -> unit) -> unit
(** [iter_adj g v f] calls [f neighbor edge_id] for every incident edge of
    [v], in edge-insertion order.  The allocation-free replacement for the
    old boxed [adj] array. *)

val fold_adj : t -> int -> init:'a -> f:('a -> int -> int -> 'a) -> 'a
(** [fold_adj g v ~init ~f] folds [f acc neighbor edge_id] over the
    incident edges of [v] in edge-insertion order. *)

val exists_adj : t -> int -> (int -> int -> bool) -> bool
(** [exists_adj g v p] is true iff [p neighbor edge_id] holds for some
    incident edge of [v]; short-circuits in edge-insertion order. *)

val neighbors : t -> int -> int array
(** [neighbors g v] is the neighbor list of [v] (fresh array), in
    edge-insertion order. *)

(** {2 Raw CSR indexing}

    For consumers that need random access into a vertex's segment (the
    CONGEST fabric's per-node tables, the planarity rotation builder).
    Positions [adj_offset g v .. adj_offset g (v+1) - 1] hold [v]'s
    incident pairs in edge-insertion order. *)

val adj_offset : t -> int -> int
(** Start of [v]'s CSR segment; [adj_offset g (n g)] is [2 * m g]. *)

val adj_dst : t -> int -> int
(** Neighbor id stored at raw CSR position [p]. *)

val adj_eid : t -> int -> int
(** Edge id stored at raw CSR position [p]. *)

val other_endpoint : t -> int -> int -> int
(** [other_endpoint g e v] is the endpoint of [e] distinct from [v].
    @raise Invalid_argument if [v] is not an endpoint of [e]. *)

val mem_edge : t -> int -> int -> bool
(** [mem_edge g u v] tests adjacency (binary search, O(log (degree g u))). *)

val find_edge : t -> int -> int -> int option
(** Edge id joining [u] and [v], if any. *)

val find_edge_id : t -> int -> int -> int
(** Like {!find_edge} but returns [-1] when absent: the allocation-free
    lookup the CONGEST engine's targeted-send path uses. *)

val fingerprint : t -> Memo.Fingerprint.t
(** Structural fingerprint over [n] and the edge array in insertion order;
    computed once and cached on the graph.  The cache key ingredient for
    every graph-derived memoized artifact. *)

val heap_bytes : t -> int
(** Total bytes of the off-heap Bigarray payload.  [Obj.reachable_words]
    does not see it, so memoized graph producers pass this as the
    [Memo.create ~bytes_hint] so the cache's byte bound stays honest. *)

(** {1 Construction} *)

(** Incremental construction for large graphs: push raw endpoint pairs
    (self-loops dropped, duplicates in either orientation merged keeping
    the first occurrence) into growable off-heap arrays, then seal into a
    CSR graph in O(n + m) without hash tables or boxed intermediaries. *)
module Builder : sig
  type graph = t
  type t

  val create : ?edges_hint:int -> int -> t
  (** [create n] starts a builder over vertices [0 .. n-1]; [edges_hint]
      pre-sizes the raw edge store. *)

  val add_edge : t -> int -> int -> unit
  (** Record one endpoint pair.  Self-loops are dropped silently (matching
      the historical [of_edges] semantics).
      @raise Invalid_argument on an out-of-range endpoint. *)

  val raw_count : t -> int
  (** Pairs recorded so far (before dedup). *)

  val build : t -> graph
  (** Seal: dedup keeping first occurrences, number surviving edges in
      insertion order, and lay out the CSR arrays.  The builder may be
      reused afterwards ([build] does not mutate recorded pairs). *)
end

val of_edges : int -> (int * int) list -> t
(** [of_edges n edges] builds a graph on [n] vertices. Duplicate edges (in
    either orientation) are merged; self-loops are dropped. *)

val complete : int -> t
(** Complete graph [K_n]. *)

val iter_edges : t -> (int -> int -> int -> unit) -> unit
(** [iter_edges g f] calls [f e u v] for every edge. *)

val fold_edges : t -> init:'a -> f:('a -> int -> int -> int -> 'a) -> 'a

(** {1 Weights}

    Edge weights live outside the graph, keyed by edge id, so the same
    topology can carry many weight functions (random weights for tree
    packing, unit weights for BFS checks, ...). *)

type weights = float array

val unit_weights : t -> weights

val random_weights : ?state:Random.State.t -> t -> weights
(** Distinct-ish uniform weights in (0,1); with a seeded state for
    reproducibility. *)

val pp : t Fmt.t
(** Terse description, ["graph(n=.., m=..)"]. *)
