(** Allocation-free access to the stdlib LXM random stream.

    The integer-kernel generators (RMAT sampling, random edge weights)
    draw ~20 floats per sampled edge; the boxed intermediates of
    [Random.State.float] dominate million-edge builds.  [draw53] returns
    the raw 53-bit draw as an immediate int, consuming the underlying
    stream exactly like [Random.State.float st 1.0] — same
    [caml_lxm_next] calls, same zero-retry — so switching a loop between
    the two paths never changes what gets generated. *)

val active : unit -> bool
(** Whether the fast path provably reproduces the stdlib stream on this
    runtime (verified once by replaying 512 draws against
    [Random.State.float] on a copied state).  When [false], callers must
    use the stdlib path; generated values stay identical either way. *)

val draw53 : Random.State.t -> int
(** The 53-bit mantissa draw of [Random.State.float st 1.0]:
    [float_of_int (draw53 st) *. 0x1.p-53] is bit-identical to that call
    and advances [st] identically.  Nonzero, in [1, 2^53).  Only
    meaningful when [active ()] holds. *)
