(** Plain-text graph interchange: the CLI and external tools read and write
    edge lists.

    Format: first line [n m], then [m] lines [u v] (0-based vertex ids),
    optionally followed by a weight per edge ([u v w]). Lines starting with
    ['#'] are comments. *)

val to_string : ?weights:Graph.weights -> Graph.t -> string
val of_string : string -> Graph.t * Graph.weights option

val write_file : string -> ?weights:Graph.weights -> Graph.t -> unit
val read_file : string -> Graph.t * Graph.weights option

(** {1 Raw edge lists}

    Headerless whitespace-separated edge lists, the format SNAP-style
    dataset downloads use once gunzipped: one [u v] pair per line (tabs or
    spaces), ['#'] or ['%'] comment lines, blank lines, and an optional
    ignored third column.  No decompression here — pipe through [zcat]
    first. *)

val of_edge_list : ?n:int -> string -> Graph.t
(** Parse a raw edge list.  The vertex count is inferred as the maximum
    mentioned id plus one unless [n] supplies a larger count; self-loops
    are dropped and duplicate pairs merged as in {!Graph.of_edges}.
    @raise Invalid_argument on malformed input, naming the 1-based line
    number. *)

val read_edge_list : ?n:int -> string -> Graph.t
(** {!of_edge_list} over a file's contents. *)
