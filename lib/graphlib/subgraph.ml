type mapping = { sub : Graph.t; to_sub : int array; to_host : int array }

let induced g vs =
  let n = Graph.n g in
  let to_sub = Array.make n (-1) in
  let count = ref 0 in
  List.iter
    (fun v ->
      if to_sub.(v) < 0 then begin
        to_sub.(v) <- !count;
        incr count
      end)
    vs;
  let to_host = Array.make !count (-1) in
  Array.iteri (fun v s -> if s >= 0 then to_host.(s) <- v) to_sub;
  let edges =
    Graph.fold_edges g ~init:[] ~f:(fun acc _ u v ->
        if to_sub.(u) >= 0 && to_sub.(v) >= 0 then (to_sub.(u), to_sub.(v)) :: acc else acc)
  in
  { sub = Graph.of_edges !count edges; to_sub; to_host }

let delete_vertices g vs =
  let n = Graph.n g in
  let kill = Array.make n false in
  List.iter (fun v -> kill.(v) <- true) vs;
  let keep = ref [] in
  for v = n - 1 downto 0 do
    if not kill.(v) then keep := v :: !keep
  done;
  induced g !keep

let delete_edges g es =
  let m = Graph.m g in
  let kill = Array.make m false in
  List.iter (fun e -> kill.(e) <- true) es;
  let edges =
    Graph.fold_edges g ~init:[] ~f:(fun acc e u v -> if kill.(e) then acc else (u, v) :: acc)
  in
  Graph.of_edges (Graph.n g) edges

let quotient g cls =
  let n = Graph.n g in
  if Array.length cls <> n then invalid_arg "Subgraph.quotient: bad labelling";
  let tbl = Hashtbl.create 16 in
  let labels = Array.copy cls in
  Array.sort Int.compare labels;
  let count = ref 0 in
  Array.iter
    (fun l ->
      if not (Hashtbl.mem tbl l) then begin
        Hashtbl.add tbl l !count;
        incr count
      end)
    labels;
  let edges =
    Graph.fold_edges g ~init:[] ~f:(fun acc _ u v ->
        let cu = Hashtbl.find tbl cls.(u) and cv = Hashtbl.find tbl cls.(v) in
        if cu = cv then acc else (cu, cv) :: acc)
  in
  (Graph.of_edges !count edges, !count)

let contract_edge g e =
  let u, v = Graph.edge g e in
  let cls = Array.init (Graph.n g) (fun i -> if i = v then u else i) in
  fst (quotient g cls)
