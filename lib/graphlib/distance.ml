let dijkstra g w src =
  let n = Graph.n g in
  let dist = Array.make n infinity in
  let q = Pqueue.create () in
  dist.(src) <- 0.0;
  Pqueue.push q 0.0 src;
  let rec loop () =
    match Pqueue.pop q with
    | None -> ()
    | Some (d, v) ->
        if d <= dist.(v) then
          Graph.iter_adj g v (fun u e ->
              let nd = d +. w.(e) in
              if nd < dist.(u) then begin
                dist.(u) <- nd;
                Pqueue.push q nd u
              end);
        loop ()
  in
  loop ();
  dist

let eccentricity g v =
  let dist = Traversal.bfs g v in
  Array.fold_left max 0 dist

let farthest g v =
  let dist = Traversal.bfs g v in
  let best = ref v and bd = ref 0 in
  Array.iteri
    (fun u d ->
      if d > !bd then begin
        bd := d;
        best := u
      end)
    dist;
  (!best, !bd)

(* the n-sweep scans reuse one dist/work buffer pair across all n BFS
   runs via [Traversal.bfs_into]: same distances, no per-vertex arrays *)
let diameter_exact g =
  let n = Graph.n g in
  if n < 2 then 0
  else begin
    let dist = Array.make n (-1) and work = Array.make n 0 in
    let d = ref 0 in
    for v = 0 to n - 1 do
      Traversal.bfs_into ~dist ~work g v;
      for u = 0 to n - 1 do
        if dist.(u) > !d then d := dist.(u)
      done
    done;
    !d
  end

let diameter_double_sweep g =
  let n = Graph.n g in
  if n < 2 then 0
  else begin
    let best = ref 0 in
    let v = ref 0 in
    for _ = 1 to 4 do
      let u, d = farthest g !v in
      if d > !best then best := d;
      v := u
    done;
    !best
  end

let radius_center g =
  let n = Graph.n g in
  if n = 0 then (0, 0)
  else begin
    let dist = Array.make n (-1) and work = Array.make n 0 in
    let center = ref 0 and radius = ref max_int in
    for v = 0 to n - 1 do
      Traversal.bfs_into ~dist ~work g v;
      let e = ref 0 in
      for u = 0 to n - 1 do
        if dist.(u) > !e then e := dist.(u)
      done;
      if !e < !radius then begin
        radius := !e;
        center := v
      end
    done;
    (!center, !radius)
  end
