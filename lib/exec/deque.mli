(** Chase–Lev work-stealing deque over cell indices.

    One deque per pool slice: the owning domain pushes and pops at the
    bottom (LIFO for the owner), thieves steal single items from the top
    with a CAS on the [top] counter.  The classic algorithm, specialized to
    the pool's usage:

    - items are plain [int] cell indices;
    - capacity is fixed at creation — {!push} never grows the buffer.  The
      pool seeds each deque with its whole contiguous chunk before any
      other domain can observe it, and nobody pushes after dispatch, so the
      circular-buffer growth path of the general algorithm is dead code
      here and is omitted;
    - {!push} is owner-only and must not race with {!pop}/{!steal}.  In the
      pool, seeding happens before the worker handoff (the mailbox mutex
      publishes the seeded buffer), which makes the buffer contents
      read-only while the deque is shared — only [bottom]/[top] move.

    Seeding a chunk \[lo, hi) by pushing indices from [hi - 1] down to [lo]
    makes the owner {!pop} cells in increasing index order (matching the
    old static-chunk sweep) while thieves {!steal} from the high end. *)

type t

val create : capacity:int -> t
(** An empty deque holding at most [capacity] items ([capacity >= 1]). *)

val push : t -> int -> unit
(** Owner-only, and only before the deque is shared.  @raise Invalid_argument
    when full. *)

val pop : t -> int option
(** Owner takes from the bottom; [None] when empty.  Safe against
    concurrent {!steal}s: the last remaining item is resolved by a CAS race
    that exactly one side wins. *)

val steal : t -> [ `Stolen of int | `Empty | `Retry ]
(** Thief takes from the top.  [`Retry] means the CAS lost to a concurrent
    {!pop}/{!steal} — the caller may try again; [`Empty] is a stable answer
    for the observed snapshot. *)

val size_hint : t -> int
(** Racy size estimate (bottom - top clamped at 0); exact when quiescent. *)
