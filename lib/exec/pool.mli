(** Fixed-size domain pool with deterministic chunked scheduling.

    The experiment fabric: a sweep is a list of independent cells (one
    graph/parameter/seed combination each); {!map_cells} slices the cell
    array into [jobs] contiguous, balanced chunks, runs chunk 0 on the
    calling domain and the rest on persistent worker domains, and returns
    results indexed exactly like the input.  Determinism contract: every
    cell computes from its own inputs (its own seed, no shared mutable
    state), so the result array — and anything the caller prints from it in
    index order — is byte-identical whatever the job count.

    Observability integrates at the join: workers adopt the caller's open
    span context before running ({!Obs.Span.adopt}) and their span tables,
    metric stores, and buffered sink lines are captured when their chunk
    ends and absorbed into the calling domain in chunk order
    ({!Obs.capture_domain}/{!Obs.absorb_domain}), so counters, histograms
    and last-writer gauges merge to the same values sequential execution
    produces.

    With [jobs = 1] (or a single cell) no domain is ever involved: the
    cells run inline on the calling domain, making [-j 1] bit-identical to
    code that never heard of the pool. *)

type t

val create : jobs:int -> t
(** Spawn [jobs - 1] persistent worker domains ([jobs] is clamped to at
    least 1).  The workers idle on a condition variable between sweeps.
    Call {!shutdown} when done — live workers keep the process alive. *)

val jobs : t -> int

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent; the pool must not be
    used afterwards. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and shuts it down when
    [f] returns or raises. *)

val map_cells : t -> f:(int -> 'a -> 'b) -> 'a array -> 'b array
(** [map_cells t ~f cells] computes [f i cells.(i)] for every [i] and
    returns the results in input order.  [f] runs on the calling domain for
    chunk 0 and on worker domains otherwise; it must not touch mutable
    state shared with other cells (print, grow caller-side refs, use the
    global [Random] state, ...) — return data instead and let the caller
    emit it in order.  Observability (spans, metrics, sink events) is safe
    anywhere.

    If cells raise, the exception of the lowest-indexed raising cell is
    re-raised (with its backtrace) after all chunks finish and worker
    observability state is absorbed. *)

val map_list : t -> f:('a -> 'b) -> 'a list -> 'b list
(** List-flavored {!map_cells} (cell index dropped), for callers whose
    sweeps are lists. *)
