(** Fixed-size domain pool with deterministic work-stealing scheduling.

    The experiment fabric: a sweep is a list of independent cells (one
    graph/parameter/seed combination each); {!map_cells} seeds one
    Chase–Lev deque per slice with a contiguous, balanced chunk of cell
    indices, runs slice 0 on the calling domain and the rest on persistent
    worker domains, and returns results indexed exactly like the input.
    A slice drains its own deque in increasing cell order and then steals
    single cells from the high-index end of other slices' deques, so
    skewed per-cell costs rebalance dynamically instead of serializing on
    the slowest static chunk.

    Determinism contract: every cell computes from its own inputs (its own
    seed, no shared mutable state) and every result lands in an
    index-addressed slot, so the result array — and anything the caller
    prints from it in index order — is byte-identical whatever the job
    count and whatever the steal schedule.

    Observability integrates at the join: workers adopt the caller's open
    span context before running ({!Obs.Span.adopt}) and their span tables,
    metric stores, and buffered sink lines are captured when their slice
    ends and absorbed into the calling domain in slice order
    ({!Obs.capture_domain}/{!Obs.absorb_domain}).  Counters, histograms and
    span tables merge commutatively; gauges — last-writer-wins, the one
    order-sensitive merge — are ranked by cell index
    ({!Obs.Metrics.set_merge_rank} brackets every cell), so the merged
    value is the highest-indexed writing cell's, identical to sequential
    execution no matter which domain stole which cell.

    With [jobs = 1] (or a single cell) no domain and no deque is ever
    involved: the cells run inline on the calling domain, making [-j 1]
    bit-identical to code that never heard of the pool. *)

type t

val create : jobs:int -> t
(** Spawn [jobs - 1] persistent worker domains ([jobs] is clamped to at
    least 1).  The workers idle on a condition variable between sweeps.
    Call {!shutdown} when done — live workers keep the process alive. *)

val jobs : t -> int

val steal_count : t -> int
(** Total cells executed by a slice other than the one they were seeded
    into, over the pool's lifetime.  Timing-dependent (any value from 0 to
    the number of dispatched cells is legal); also accumulated into the
    ["exec.pool.steals"] metrics counter per sweep. *)

val shutdown : t -> unit
(** Stop and join the worker domains — all of them, even when a join
    re-raises a worker's uncaught exception; the first (lowest-index)
    exception is re-raised after every domain is joined, so no domain is
    ever leaked parked on its mailbox.  Idempotent; the pool must not be
    used afterwards. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and shuts it down when
    [f] returns or raises. *)

val map_cells : t -> f:(int -> 'a -> 'b) -> 'a array -> 'b array
(** [map_cells t ~f cells] computes [f i cells.(i)] for every [i] and
    returns the results in input order.  [f] runs on the calling domain for
    slice 0 and on worker domains otherwise (any cell may migrate to any
    slice by stealing); it must not touch mutable state shared with other
    cells (print, grow caller-side refs, use the global [Random] state,
    ...) — return data instead and let the caller emit it in order.
    Observability (spans, metrics, sink events) is safe anywhere.

    If cells raise, every remaining cell still runs, and the exception of
    the lowest-indexed raising cell is re-raised (with its backtrace) after
    all slices finish and worker observability state is absorbed.  A task
    closure that fails outside any cell (infrastructure failure) is
    re-raised only when no cell failed, and can never leave worker domains
    parked: the mailbox is always cleared and the crash published to the
    caller. *)

val map_list : t -> f:('a -> 'b) -> 'a list -> 'b list
(** List-flavored {!map_cells} (cell index dropped), for callers whose
    sweeps are lists. *)
