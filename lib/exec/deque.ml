(* Chase–Lev deque, fixed capacity, int items.  See deque.mli for the
   usage restrictions that let this stay this small: the buffer is written
   only by pre-share owner pushes, so the shared-phase data race surface is
   exactly the two Atomic counters. *)

type t = {
  buf : int array; (* read-only while shared; see mli *)
  bottom : int Atomic.t; (* next owner slot; owner writes, thieves read *)
  top : int Atomic.t; (* next thief slot; CAS by thieves and final pop *)
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Deque.create: capacity < 1";
  { buf = Array.make capacity 0; bottom = Atomic.make 0; top = Atomic.make 0 }

let push q x =
  let b = Atomic.get q.bottom in
  if b - Atomic.get q.top >= Array.length q.buf then
    invalid_arg "Deque.push: full";
  q.buf.(b mod Array.length q.buf) <- x;
  Atomic.set q.bottom (b + 1)

let pop q =
  let b = Atomic.get q.bottom - 1 in
  Atomic.set q.bottom b;
  let t = Atomic.get q.top in
  if t > b then begin
    (* empty: restore the canonical bottom = top state *)
    Atomic.set q.bottom (b + 1);
    None
  end
  else if t = b then begin
    (* last item: race thieves for it via the top counter *)
    let won = Atomic.compare_and_set q.top t (t + 1) in
    Atomic.set q.bottom (b + 1);
    if won then Some q.buf.(b mod Array.length q.buf) else None
  end
  else Some q.buf.(b mod Array.length q.buf)

let steal q =
  let t = Atomic.get q.top in
  let b = Atomic.get q.bottom in
  if t >= b then `Empty
  else begin
    let x = q.buf.(t mod Array.length q.buf) in
    if Atomic.compare_and_set q.top t (t + 1) then `Stolen x else `Retry
  end

let size_hint q = max 0 (Atomic.get q.bottom - Atomic.get q.top)
