(* Fixed-size domain pool, stdlib-only (Domain + Mutex + Condition).

   Workers are spawned once at [create] and parked on a condition variable;
   each [map_cells] hands every worker at most one closure (its whole
   contiguous chunk), so scheduling is static and deterministic — no work
   stealing, no atomics on the data path.  The mailbox mutex provides the
   happens-before edges both ways: everything the caller wrote before
   submitting (cell array, obs enable flags, installed sink) is visible to
   the worker, and everything the worker wrote (results, captured obs
   state) is visible to the caller after the join. *)

type mailbox = {
  m : Mutex.t;
  cv : Condition.t;
  mutable work : (unit -> unit) option;
  mutable stop : bool;
}

type t = {
  jobs : int;
  boxes : mailbox array; (* length jobs - 1 *)
  domains : unit Domain.t array;
  mutable live : bool;
}

let jobs t = t.jobs

let worker_loop box =
  let rec loop () =
    let task =
      Mutex.protect box.m (fun () ->
          while box.work = None && not box.stop do
            Condition.wait box.cv box.m
          done;
          box.work)
    in
    match task with
    | Some f ->
        f ();
        Mutex.protect box.m (fun () ->
            box.work <- None;
            Condition.broadcast box.cv);
        loop ()
    | None -> (* stop *) ()
  in
  loop ()

let create ~jobs =
  let jobs = max 1 jobs in
  let boxes =
    Array.init (jobs - 1) (fun _ ->
        {
          m = Mutex.create ();
          cv = Condition.create ();
          work = None;
          stop = false;
        })
  in
  let domains =
    Array.map (fun box -> Domain.spawn (fun () -> worker_loop box)) boxes
  in
  { jobs; boxes; domains; live = true }

let shutdown t =
  if t.live then begin
    t.live <- false;
    Array.iter
      (fun box ->
        Mutex.protect box.m (fun () ->
            box.stop <- true;
            Condition.broadcast box.cv))
      t.boxes;
    Array.iter Domain.join t.domains
  end

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let submit box task =
  Mutex.protect box.m (fun () ->
      while box.work <> None do
        Condition.wait box.cv box.m
      done;
      box.work <- Some task;
      Condition.broadcast box.cv)

let await box =
  Mutex.protect box.m (fun () ->
      while box.work <> None do
        Condition.wait box.cv box.m
      done)

(* contiguous balanced chunks: chunk [s] covers [off s, off (s+1)) and the
   first [n mod slices] chunks get one extra cell *)
let chunk_offset n slices s =
  let q = n / slices and r = n mod slices in
  (s * q) + min s r

let map_cells (type b) t ~f (cells : 'a array) : b array =
  if not t.live then invalid_arg "Pool.map_cells: pool is shut down";
  let n = Array.length cells in
  if n = 0 then [||]
  else begin
    let slices = min t.jobs n in
    if slices = 1 then Array.mapi f cells
    else begin
      let results : b option array = Array.make n None in
      let fails : (int * exn * Printexc.raw_backtrace) option array =
        Array.make slices None
      in
      let snaps : Obs.domain_state option array = Array.make slices None in
      let ctx = Obs.Span.fork_context () in
      let run_chunk s =
        let lo = chunk_offset n slices s and hi = chunk_offset n slices (s + 1) in
        let i = ref lo in
        (try
           while !i < hi do
             results.(!i) <- Some (f !i cells.(!i));
             incr i
           done
         with e ->
           fails.(s) <- Some (!i, e, Printexc.get_raw_backtrace ()));
        if s > 0 then snaps.(s) <- Some (Obs.capture_domain ())
      in
      (* dispatch chunks 1.. to the workers, run chunk 0 here *)
      for s = 1 to slices - 1 do
        let box = t.boxes.(s - 1) in
        submit box (fun () ->
            Obs.Span.adopt ctx;
            run_chunk s)
      done;
      run_chunk 0;
      for s = 1 to slices - 1 do
        await t.boxes.(s - 1)
      done;
      (* merge worker obs state in chunk order: deterministic, and equal to
         the sequential accumulation order *)
      Array.iter (Option.iter Obs.absorb_domain) snaps;
      (* re-raise the failure of the lowest-indexed raising cell, matching
         what a sequential left-to-right loop would have thrown *)
      let first_fail =
        Array.fold_left
          (fun acc fo ->
            match (acc, fo) with
            | None, f -> f
            | Some (i, _, _), Some ((j, _, _) as f) when j < i -> Some f
            | acc, _ -> acc)
          None fails
      in
      match first_fail with
      | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
      | None ->
          Array.map
            (function
              | Some r -> r
              | None -> assert false (* no failure => every cell filled *))
            results
    end
  end

let map_list t ~f cells =
  Array.to_list (map_cells t ~f:(fun _ c -> f c) (Array.of_list cells))
