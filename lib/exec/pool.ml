(* Fixed-size domain pool, stdlib-only (Domain + Mutex + Condition + Atomic).

   Workers are spawned once at [create] and parked on a condition variable;
   each [map_cells] seeds one work-stealing deque per slice with a
   contiguous chunk of cell indices and hands every worker one closure (its
   slice loop).  A slice drains its own deque bottom-up — increasing cell
   index, like the old static chunk sweep — and then forages: it steals
   single cells from the top (high-index end) of other slices' deques until
   a full scan finds them all empty.  Skewed per-cell costs therefore
   rebalance dynamically, while determinism is untouched because results
   land in an index-addressed array and every observable merge is either
   commutative (counters, histograms, span tables) or rank-resolved
   (gauges, via [Obs.Metrics.set_merge_rank]).

   The mailbox mutex provides the happens-before edges both ways:
   everything the caller wrote before submitting (cell array, seeded
   deques, obs enable flags, installed sink) is visible to the worker, and
   everything the worker wrote (results, captured obs state, a crash
   report) is visible to the caller after the join. *)

type mailbox = {
  m : Mutex.t;
  cv : Condition.t;
  mutable work : (unit -> unit) option;
  mutable stop : bool;
  mutable crashed : (exn * Printexc.raw_backtrace) option;
      (* a task that escaped its closure; the worker survives it *)
}

type t = {
  jobs : int;
  boxes : mailbox array; (* length jobs - 1 *)
  domains : unit Domain.t array;
  mutable live : bool;
  steals : int Atomic.t;
}

let steals_c = Obs.Metrics.counter "exec.pool.steals"
let jobs t = t.jobs
let steal_count t = Atomic.get t.steals

let worker_loop box =
  let rec loop () =
    let task =
      Mutex.protect box.m (fun () ->
          while box.work = None && not box.stop do
            Condition.wait box.cv box.m
          done;
          box.work)
    in
    match task with
    | Some f ->
        (* run outside the lock; a task that raises must still clear the
           mailbox and wake the caller, or the pool deadlocks with every
           other domain parked — the crash is published for the caller to
           re-raise after the join *)
        let crash =
          try
            f ();
            None
          with e -> Some (e, Printexc.get_raw_backtrace ())
        in
        Mutex.protect box.m (fun () ->
            (match crash with Some c -> box.crashed <- Some c | None -> ());
            box.work <- None;
            Condition.broadcast box.cv);
        loop ()
    | None -> (* stop *) ()
  in
  loop ()

let create ~jobs =
  let jobs = max 1 jobs in
  let boxes =
    Array.init (jobs - 1) (fun _ ->
        {
          m = Mutex.create ();
          cv = Condition.create ();
          work = None;
          stop = false;
          crashed = None;
        })
  in
  let domains =
    Array.map (fun box -> Domain.spawn (fun () -> worker_loop box)) boxes
  in
  { jobs; boxes; domains; live = true; steals = Atomic.make 0 }

let shutdown t =
  if t.live then begin
    t.live <- false;
    Array.iter
      (fun box ->
        Mutex.protect box.m (fun () ->
            box.stop <- true;
            Condition.broadcast box.cv))
      t.boxes;
    (* join every domain before re-raising anything: bailing out on the
       first failed join would leak still-running domains *)
    let first = ref None in
    Array.iter
      (fun d ->
        try Domain.join d
        with e ->
          if !first = None then first := Some (e, Printexc.get_raw_backtrace ()))
      t.domains;
    match !first with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let submit box task =
  Mutex.protect box.m (fun () ->
      while box.work <> None do
        Condition.wait box.cv box.m
      done;
      box.work <- Some task;
      Condition.broadcast box.cv)

let await box =
  Mutex.protect box.m (fun () ->
      while box.work <> None do
        Condition.wait box.cv box.m
      done)

(* contiguous balanced chunks: chunk [s] covers [off s, off (s+1)) and the
   first [n mod slices] chunks get one extra cell *)
let chunk_offset n slices s =
  let q = n / slices and r = n mod slices in
  (s * q) + min s r

let map_cells (type b) t ~f (cells : 'a array) : b array =
  if not t.live then invalid_arg "Pool.map_cells: pool is shut down";
  let n = Array.length cells in
  if n = 0 then [||]
  else begin
    let slices = min t.jobs n in
    if slices = 1 then Array.mapi f cells
    else begin
      let results : b option array = Array.make n None in
      let fails : (int * exn * Printexc.raw_backtrace) option array =
        Array.make slices None
      in
      let snaps : Obs.domain_state option array = Array.make slices None in
      let ctx = Obs.Span.fork_context () in
      let steals0 = Atomic.get t.steals in
      Obs.Metrics.reset_merge_ranks ();
      (* seed slice [s] with its chunk pushed high-to-low: the owner pops
         cells in increasing index order, thieves steal from the high end *)
      let deques =
        Array.init slices (fun s ->
            let lo = chunk_offset n slices s
            and hi = chunk_offset n slices (s + 1) in
            let d = Deque.create ~capacity:(hi - lo) in
            for i = hi - 1 downto lo do
              Deque.push d i
            done;
            d)
      in
      (* slice [s] executes cell [i]: the failure slot is per-slice (only
         domain [s] writes it) and keeps the lowest raising cell index, so
         the global minimum over slices is exactly the cell a sequential
         sweep would have raised from *)
      let exec s i =
        Obs.Metrics.set_merge_rank i;
        try results.(i) <- Some (f i cells.(i))
        with e -> (
          let bt = Printexc.get_raw_backtrace () in
          match fails.(s) with
          | Some (j, _, _) when j <= i -> ()
          | _ -> fails.(s) <- Some (i, e, bt))
      in
      let run_slice s =
        let own = deques.(s) in
        let rec drain () =
          match Deque.pop own with
          | Some i ->
              exec s i;
              drain ()
          | None -> ()
        in
        drain ();
        (* forage until a full scan of the other deques comes back empty;
           a lost CAS ([`Retry]) means someone else just took an item, so
           progress is global and the rescan terminates *)
        let misses = ref 0 and v = ref ((s + 1) mod slices) in
        while !misses < slices - 1 do
          if !v = s then v := (!v + 1) mod slices
          else
            match Deque.steal deques.(!v) with
            | `Stolen i ->
                Atomic.incr t.steals;
                exec s i;
                misses := 0 (* same victim may have more *)
            | `Retry ->
                misses := 0;
                Domain.cpu_relax ();
                v := (!v + 1) mod slices
            | `Empty ->
                incr misses;
                v := (!v + 1) mod slices
        done;
        Obs.Metrics.clear_merge_rank ();
        if s > 0 then snaps.(s) <- Some (Obs.capture_domain ())
      in
      (* dispatch slices 1.. to the workers, run slice 0 here *)
      for s = 1 to slices - 1 do
        let box = t.boxes.(s - 1) in
        submit box (fun () ->
            Obs.Span.adopt ctx;
            run_slice s)
      done;
      run_slice 0;
      for s = 1 to slices - 1 do
        await t.boxes.(s - 1)
      done;
      (* merge worker obs state in slice order: deterministic, and (with
         gauge ranks) equal to the sequential accumulation *)
      Array.iter (Option.iter Obs.absorb_domain) snaps;
      let stolen = Atomic.get t.steals - steals0 in
      if stolen > 0 then Obs.Metrics.add steals_c stolen;
      (* an infrastructure crash (a slice loop escaping, not a cell): keep
         the boxes clean and remember the lowest-slice one *)
      let crash = ref None in
      for s = 1 to slices - 1 do
        let box = t.boxes.(s - 1) in
        (match box.crashed with
        | Some c when !crash = None -> crash := Some c
        | _ -> ());
        box.crashed <- None
      done;
      (* re-raise the failure of the lowest-indexed raising cell, matching
         what a sequential left-to-right loop would have thrown *)
      let first_fail =
        Array.fold_left
          (fun acc fo ->
            match (acc, fo) with
            | None, f -> f
            | Some (i, _, _), Some ((j, _, _) as f) when j < i -> Some f
            | acc, _ -> acc)
          None fails
      in
      match (first_fail, !crash) with
      | Some (_, e, bt), _ | None, Some (e, bt) ->
          Printexc.raise_with_backtrace e bt
      | None, None ->
          Array.map
            (function
              | Some r -> r
              | None -> assert false (* no failure => every cell filled *))
            results
    end
  end

let map_list t ~f cells =
  Array.to_list (map_cells t ~f:(fun _ c -> f c) (Array.of_list cells))
